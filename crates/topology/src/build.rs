//! Topology constructors.
//!
//! The paper's Transputer system hardwires sixteen T805s into four pipelines
//! of four ("naps") and uses INMOS C004 crossbar switches on the remaining
//! links so that "almost all commonly used network topologies can be
//! configured" (§3.1). We skip the switch-wiring detail and construct the
//! logical topologies directly; [`nap_backbone`] builds the hardwired base
//! configuration for tests that want it.
//!
//! Every builder validates its node count against [`MAX_NODES`] *before*
//! allocating or casting anything, and returns a typed [`TopologyError`]
//! for oversize, empty, or unrealizable requests. (Before PR 10 the
//! builders wrapped indices through bare `as u16` casts, silently
//! corrupting any adjacency past 65 536 nodes.)

use crate::types::{NodeId, Topology, TopologyError, TopologyKind, MAX_NODES};

/// Complete graphs cap at this many nodes: their adjacency is quadratic
/// (`n·(n-1)` entries), so a `MAX_NODES`-sized request would be an
/// out-of-memory error dressed up as a topology.
pub const COMPLETE_MAX_NODES: usize = 4096;

/// Pre-validated index conversion. Builders check the total node count up
/// front, so this cannot fail on any reachable path; the check is kept (a
/// panic rather than a raw cast) so a future builder bug fails loudly
/// instead of wrapping.
#[inline]
fn nid(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// Validate a requested node count: nonzero and within [`MAX_NODES`].
fn check_size(shape: &'static str, n: usize) -> Result<(), TopologyError> {
    if n == 0 {
        return Err(TopologyError::Empty { shape });
    }
    if n > MAX_NODES {
        return Err(TopologyError::TooManyNodes {
            shape,
            requested: n as u128,
            max: MAX_NODES as u64,
        });
    }
    Ok(())
}

/// Linear array of `n` nodes: `0 - 1 - ... - n-1`.
pub fn linear(n: usize) -> Result<Topology, TopologyError> {
    check_size("linear", n)?;
    let adj = (0..n)
        .map(|i| {
            let mut l = Vec::with_capacity(2);
            if i > 0 {
                l.push(nid(i - 1));
            }
            if i + 1 < n {
                l.push(nid(i + 1));
            }
            l
        })
        .collect();
    Ok(Topology::from_adjacency(TopologyKind::Linear, adj))
}

/// Ring of `n` nodes (for `n <= 2` this degenerates to the linear array,
/// since the graph is simple).
pub fn ring(n: usize) -> Result<Topology, TopologyError> {
    check_size("ring", n)?;
    if n <= 2 {
        // Same adjacency as the linear array (the graph is simple), but keep
        // the requested kind for labelling.
        let base = linear(n)?;
        let adj = base.nodes().map(|u| base.neighbors(u).to_vec()).collect();
        return Ok(Topology::from_adjacency(TopologyKind::Ring, adj));
    }
    let adj = (0..n)
        .map(|i| vec![nid((i + n - 1) % n), nid((i + 1) % n)])
        .collect();
    Ok(Topology::from_adjacency(TopologyKind::Ring, adj))
}

/// `rows x cols` 2-D mesh without wraparound. Node `(r, c)` has index
/// `r * cols + c`. The product is validated up front (in 128-bit, so an
/// overflowing `rows * cols` is reported exactly instead of wrapping
/// before the check).
pub fn mesh(rows: usize, cols: usize) -> Result<Topology, TopologyError> {
    let n = checked_extent_product("mesh", rows, cols)?;
    let mut adj = vec![Vec::with_capacity(4); n];
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if r > 0 {
                adj[i].push(nid(i - cols));
            }
            if r + 1 < rows {
                adj[i].push(nid(i + cols));
            }
            if c > 0 {
                adj[i].push(nid(i - 1));
            }
            if c + 1 < cols {
                adj[i].push(nid(i + 1));
            }
        }
    }
    Ok(Topology::from_adjacency(
        TopologyKind::Mesh {
            rows: extent_u32(rows),
            cols: extent_u32(cols),
        },
        adj,
    ))
}

/// Validate a 2-D extent pair: both nonzero, product within [`MAX_NODES`].
fn checked_extent_product(
    shape: &'static str,
    rows: usize,
    cols: usize,
) -> Result<usize, TopologyError> {
    if rows == 0 || cols == 0 {
        return Err(TopologyError::Empty { shape });
    }
    let product = rows as u128 * cols as u128;
    if product > MAX_NODES as u128 {
        return Err(TopologyError::TooManyNodes {
            shape,
            requested: product,
            max: MAX_NODES as u64,
        });
    }
    Ok(rows * cols)
}

/// An extent already bounded by a product check (`rows * cols <= MAX_NODES`
/// with both factors nonzero implies each factor fits `u32`).
#[inline]
fn extent_u32(v: usize) -> u32 {
    u32::try_from(v).expect("extent exceeds u32 after product validation")
}

/// The squarest mesh for `n` nodes (the paper's partitions are powers of
/// two: 4 -> 2x2, 8 -> 2x4, 16 -> 4x4).
pub fn mesh_for(n: usize) -> Result<Topology, TopologyError> {
    check_size("mesh", n)?;
    let mut rows = isqrt(n);
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    mesh(rows.max(1), n / rows.max(1))
}

/// Integer square root (floor). `f64` loses integer precision past 2^53,
/// so the float shortcut the old builder used is corrected here.
fn isqrt(n: usize) -> usize {
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let mut r = (n as f64).sqrt() as usize;
    while r > 0 && r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// Binary hypercube with `2^dim` nodes; neighbors differ in one address bit.
/// Dimensions past 31 would exceed the [`MAX_NODES`] ceiling.
pub fn hypercube(dim: u8) -> Result<Topology, TopologyError> {
    if dim > 31 {
        return Err(TopologyError::TooManyNodes {
            shape: "hypercube",
            requested: 1u128 << dim,
            max: MAX_NODES as u64,
        });
    }
    let n = 1usize << dim;
    let adj = (0..n)
        .map(|i| (0..dim).map(|d| nid(i ^ (1 << d))).collect())
        .collect();
    Ok(Topology::from_adjacency(TopologyKind::Hypercube { dim }, adj))
}

/// `rows x cols` 2-D torus (mesh with wraparound links). Degree 4 for
/// extents >= 3, so it fits the T805's four links — a configuration some
/// contemporary Transputer machines used.
pub fn torus(rows: usize, cols: usize) -> Result<Topology, TopologyError> {
    let n = checked_extent_product("torus", rows, cols)?;
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::with_capacity(4); n];
    let connect = |a: usize, b: usize, adj: &mut Vec<Vec<NodeId>>| {
        if a == b {
            return;
        }
        if !adj[a].contains(&nid(b)) {
            adj[a].push(nid(b));
            adj[b].push(nid(a));
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            connect(i, r * cols + (c + 1) % cols, &mut adj);
            connect(i, ((r + 1) % rows) * cols + c, &mut adj);
        }
    }
    Ok(Topology::from_adjacency(
        TopologyKind::Torus {
            rows: extent_u32(rows),
            cols: extent_u32(cols),
        },
        adj,
    ))
}

/// The squarest torus for `n` nodes.
pub fn torus_for(n: usize) -> Result<Topology, TopologyError> {
    check_size("torus", n)?;
    let mut rows = isqrt(n);
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    torus(rows.max(1), n / rows.max(1))
}

/// Complete binary tree rooted at node 0 (children of `i` are `2i+1` and
/// `2i+2`). Degree <= 3.
pub fn binary_tree(n: usize) -> Result<Topology, TopologyError> {
    check_size("binary_tree", n)?;
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::with_capacity(3); n];
    for i in 1..n {
        let parent = (i - 1) / 2;
        adj[i].push(nid(parent));
        adj[parent].push(nid(i));
    }
    Ok(Topology::from_adjacency(TopologyKind::Tree, adj))
}

/// Star: node 0 is the hub.
pub fn star(n: usize) -> Result<Topology, TopologyError> {
    check_size("star", n)?;
    let mut adj = vec![Vec::new(); n];
    for i in 1..n {
        adj[0].push(nid(i));
        adj[i].push(NodeId(0));
    }
    Ok(Topology::from_adjacency(TopologyKind::Star, adj))
}

/// Complete graph (idealized crossbar). Caps at [`COMPLETE_MAX_NODES`]
/// because the adjacency is quadratic in `n`.
pub fn complete(n: usize) -> Result<Topology, TopologyError> {
    check_size("complete", n)?;
    if n > COMPLETE_MAX_NODES {
        return Err(TopologyError::TooManyNodes {
            shape: "complete",
            requested: n as u128,
            max: COMPLETE_MAX_NODES as u64,
        });
    }
    let adj = (0..n)
        .map(|i| (0..n).filter(|&j| j != i).map(nid).collect())
        .collect();
    Ok(Topology::from_adjacency(TopologyKind::Complete, adj))
}

/// Nodes in a three-level `k`-ary fat-tree: `k³/4` hosts + `k²/2` edge +
/// `k²/2` aggregation + `k²/4` core switches.
pub fn fat_tree_size(k: usize) -> usize {
    k * k * k / 4 + k * k + k * k / 4
}

/// [`fat_tree_size`] in 128-bit, safe for any `k`.
fn fat_tree_size_wide(k: usize) -> u128 {
    let k = k as u128;
    k * k * k / 4 + k * k + k * k / 4
}

/// Three-level k-ary fat-tree (`k` even, >= 2), every vertex a processor:
/// hosts first (`k³/4`), then per-pod edge switches (`k²/2`), per-pod
/// aggregation switches (`k²/2`), and core switches (`k²/4`) last. Pod `p`
/// holds edge/agg switches `p·k/2 .. (p+1)·k/2`; aggregation switch `j` of
/// every pod uplinks to core group `j` (cores `j·k/2 .. (j+1)·k/2`).
pub fn fat_tree(k: usize) -> Result<Topology, TopologyError> {
    if k < 2 || !k.is_multiple_of(2) {
        return Err(TopologyError::Unrealizable { shape: "fat_tree", n: k as u128 });
    }
    if fat_tree_size_wide(k) > MAX_NODES as u128 {
        return Err(TopologyError::TooManyNodes {
            shape: "fat_tree",
            requested: fat_tree_size_wide(k),
            max: MAX_NODES as u64,
        });
    }
    let half = k / 2;
    let hosts = k * k * k / 4;
    let edges = k * k / 2;
    let aggs = k * k / 2;
    let n = fat_tree_size(k);
    let edge0 = hosts;
    let agg0 = hosts + edges;
    let core0 = hosts + edges + aggs;
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::with_capacity(k); n];
    let connect = |a: usize, b: usize, adj: &mut Vec<Vec<NodeId>>| {
        adj[a].push(nid(b));
        adj[b].push(nid(a));
    };
    for hst in 0..hosts {
        // Pods hold k²/4 hosts, k/2 per edge switch.
        let pod = hst / (half * half);
        let j = (hst % (half * half)) / half;
        connect(hst, edge0 + pod * half + j, &mut adj);
    }
    for pod in 0..k {
        for je in 0..half {
            for ja in 0..half {
                connect(edge0 + pod * half + je, agg0 + pod * half + ja, &mut adj);
            }
        }
        for ja in 0..half {
            // Agg switch ja talks to every core in group ja.
            for m in 0..half {
                connect(agg0 + pod * half + ja, core0 + ja * half + m, &mut adj);
            }
        }
    }
    // k <= 2580 once the size fits MAX_NODES, so the radix fits u16.
    let k16 = u16::try_from(k).expect("fat-tree radix exceeds u16 after size check");
    Ok(Topology::from_adjacency(TopologyKind::FatTree { k: k16 }, adj))
}

/// The fat-tree whose vertex count is exactly `n`, if one exists.
pub fn fat_tree_for(n: usize) -> Result<Topology, TopologyError> {
    check_size("fat_tree", n)?;
    let mut k = 2;
    while fat_tree_size(k) <= n {
        if fat_tree_size(k) == n {
            return fat_tree(k);
        }
        k += 2;
    }
    Err(TopologyError::Unrealizable { shape: "fat_tree", n: n as u128 })
}

/// Nodes in a `dragonfly(a, p, h)`: `a·h + 1` groups of `a` routers with
/// `p` terminals each.
pub fn dragonfly_size(a: usize, p: usize, h: usize) -> usize {
    (a * h + 1) * a * (1 + p)
}

/// [`dragonfly_size`] in 128-bit, safe for any parameters.
fn dragonfly_size_wide(a: usize, p: usize, h: usize) -> u128 {
    (a as u128 * h as u128 + 1) * a as u128 * (1 + p as u128)
}

/// Dragonfly with `a` routers per group (complete intra-group graph), `p`
/// terminals per router, and `h` global links per router; `a·h + 1` groups
/// with exactly one global link between every group pair (the canonical
/// consecutive arrangement: group `i`'s global port `q` reaches group
/// `(i + q + 1) mod g`). Group `i` occupies the index block
/// `i·a·(1+p) ..`; within it router `r` sits at `r·(1+p)` followed by its
/// `p` terminals. Routers and terminals are all processors.
pub fn dragonfly(a: usize, p: usize, h: usize) -> Result<Topology, TopologyError> {
    if a < 1 || p < 1 || h < 1 {
        return Err(TopologyError::Empty { shape: "dragonfly" });
    }
    if dragonfly_size_wide(a, p, h) > MAX_NODES as u128 {
        return Err(TopologyError::TooManyNodes {
            shape: "dragonfly",
            requested: dragonfly_size_wide(a, p, h),
            max: MAX_NODES as u64,
        });
    }
    let groups = a * h + 1;
    let block = a * (1 + p);
    let n = dragonfly_size(a, p, h);
    let router = |g: usize, r: usize| g * block + r * (1 + p);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let connect = |x: usize, y: usize, adj: &mut Vec<Vec<NodeId>>| {
        if !adj[x].contains(&nid(y)) {
            adj[x].push(nid(y));
            adj[y].push(nid(x));
        }
    };
    for g in 0..groups {
        for r in 0..a {
            let rt = router(g, r);
            for t in 1..=p {
                connect(rt, rt + t, &mut adj);
            }
            for r2 in (r + 1)..a {
                connect(rt, router(g, r2), &mut adj);
            }
            // Global ports q = r·h .. (r+1)·h of this group.
            for port in 0..h {
                let q = r * h + port;
                let peer_group = (g + q + 1) % groups;
                let q2 = groups - 2 - q;
                connect(rt, router(peer_group, q2 / h), &mut adj);
            }
        }
    }
    // The size check bounds a, p, h well under u16::MAX.
    let param = |v: usize| u16::try_from(v).expect("dragonfly parameter exceeds u16");
    Ok(Topology::from_adjacency(
        TopologyKind::Dragonfly {
            a: param(a),
            p: param(p),
            h: param(h),
        },
        adj,
    ))
}

/// Index geometry of [`fat_tree`]'s vertex layout, shared by the up/down
/// router and the virtual-channel class assignment.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeGeom {
    /// Switch radix.
    pub k: usize,
    /// `k / 2` (hosts per edge switch, switches per pod level, ...).
    pub half: usize,
    /// First edge-switch index (== host count).
    pub edge0: usize,
    /// First aggregation-switch index.
    pub agg0: usize,
    /// First core-switch index.
    pub core0: usize,
}

impl FatTreeGeom {
    /// Geometry of the `k`-ary fat-tree.
    pub fn new(k: usize) -> FatTreeGeom {
        let hosts = k * k * k / 4;
        FatTreeGeom {
            k,
            half: k / 2,
            edge0: hosts,
            agg0: hosts + k * k / 2,
            core0: hosts + k * k,
        }
    }

    /// 0 = host, 1 = edge, 2 = aggregation, 3 = core.
    pub fn level(&self, v: usize) -> u8 {
        if v < self.edge0 {
            0
        } else if v < self.agg0 {
            1
        } else if v < self.core0 {
            2
        } else {
            3
        }
    }

    /// Pod of a host/edge/aggregation vertex.
    ///
    /// # Panics
    /// Panics for core switches (they belong to every pod).
    pub fn pod(&self, v: usize) -> usize {
        match self.level(v) {
            0 => v / (self.half * self.half),
            1 => (v - self.edge0) / self.half,
            2 => (v - self.agg0) / self.half,
            _ => panic!("core switch {v} belongs to no pod"),
        }
    }

    /// Within-pod switch index: a host's edge switch, an edge/agg switch's
    /// own index, or a core switch's group (== the agg index it serves).
    pub fn index(&self, v: usize) -> usize {
        match self.level(v) {
            0 => (v % (self.half * self.half)) / self.half,
            1 => (v - self.edge0) % self.half,
            2 => (v - self.agg0) % self.half,
            _ => (v - self.core0) / self.half,
        }
    }

    /// Edge switch `j` of `pod`.
    pub fn edge(&self, pod: usize, j: usize) -> usize {
        self.edge0 + pod * self.half + j
    }

    /// Aggregation switch `j` of `pod`.
    pub fn agg(&self, pod: usize, j: usize) -> usize {
        self.agg0 + pod * self.half + j
    }

    /// Core switch `m` of `group`.
    pub fn core(&self, group: usize, m: usize) -> usize {
        self.core0 + group * self.half + m
    }
}

/// Index geometry of [`dragonfly`]'s vertex layout, shared by the minimal
/// and Valiant routers and the virtual-channel class assignment.
#[derive(Debug, Clone, Copy)]
pub struct DragonflyGeom {
    /// Groups (`a·h + 1`).
    pub groups: usize,
    /// Vertices per group (`a·(1+p)`).
    pub block: usize,
    /// Vertices per router slot (`1 + p`).
    pub slot: usize,
    /// Global links per router.
    pub h: usize,
}

impl DragonflyGeom {
    /// Geometry of `dragonfly(a, p, h)`.
    pub fn new(a: usize, p: usize, h: usize) -> DragonflyGeom {
        DragonflyGeom {
            groups: a * h + 1,
            block: a * (1 + p),
            slot: 1 + p,
            h,
        }
    }

    /// Group of a vertex.
    pub fn group(&self, v: usize) -> usize {
        v / self.block
    }

    /// The router a vertex belongs to (itself when it is one).
    pub fn router_of(&self, v: usize) -> usize {
        let within = v % self.block;
        self.group(v) * self.block + (within / self.slot) * self.slot
    }

    /// True for router vertices (as opposed to terminals).
    pub fn is_router(&self, v: usize) -> bool {
        (v % self.block).is_multiple_of(self.slot)
    }

    /// The gateway router in group `from` that owns the (unique) global
    /// link toward group `to`.
    pub fn gateway(&self, from: usize, to: usize) -> usize {
        debug_assert_ne!(from, to);
        let q = (to + self.groups - from - 1) % self.groups;
        from * self.block + (q / self.h) * self.slot
    }
}

/// The balanced (`a = 2h`, `p = h`) dragonfly whose vertex count is
/// exactly `n`, if one exists.
pub fn dragonfly_for(n: usize) -> Result<Topology, TopologyError> {
    check_size("dragonfly", n)?;
    let mut h = 1;
    while dragonfly_size(2 * h, h, h) <= n {
        if dragonfly_size(2 * h, h, h) == n {
            return dragonfly(2 * h, h, h);
        }
        h += 1;
    }
    Err(TopologyError::Unrealizable { shape: "dragonfly", n: n as u128 })
}

/// The hardwired base configuration of the paper's machine: four pipelines
/// ("naps") of four processors, chained nap-to-nap so the base machine is
/// connected (one inter-nap link between consecutive naps). The C004
/// switches let the real machine rewire the spare links into any of the
/// logical topologies; simulated experiments use those logical topologies
/// directly. Infallible: the shape is fixed at 16 nodes.
pub fn nap_backbone() -> Topology {
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); 16];
    let mut connect = |a: usize, b: usize| {
        adj[a].push(nid(b));
        adj[b].push(nid(a));
    };
    for nap in 0..4 {
        let base = nap * 4;
        for k in 0..3 {
            connect(base + k, base + k + 1);
        }
    }
    // Chain the naps: last node of nap i to first node of nap i+1.
    for nap in 0..3 {
        connect(nap * 4 + 3, (nap + 1) * 4);
    }
    Topology::from_adjacency(TopologyKind::Linear, adj)
}

/// Build the topology the paper calls `<n><letter>` (e.g. `8L`, `4H`).
///
/// Returns a typed error for combinations the shape cannot realize (a
/// hypercube needs a power-of-two node count) or that exceed the node-id
/// ceiling.
pub fn by_kind(kind: TopologyKind, n: usize) -> Result<Topology, TopologyError> {
    match kind {
        TopologyKind::Linear => linear(n),
        TopologyKind::Ring => ring(n),
        TopologyKind::Mesh { .. } => mesh_for(n),
        TopologyKind::Hypercube { .. } => {
            check_size("hypercube", n)?;
            if n.is_power_of_two() {
                hypercube(u8::try_from(n.trailing_zeros()).expect("log2 fits u8"))
            } else {
                Err(TopologyError::Unrealizable { shape: "hypercube", n: n as u128 })
            }
        }
        TopologyKind::Torus { .. } => torus_for(n),
        TopologyKind::Tree => binary_tree(n),
        TopologyKind::Star => star(n),
        TopologyKind::Complete => complete(n),
        TopologyKind::FatTree { k: 0 } => fat_tree_for(n),
        TopologyKind::FatTree { k } => {
            if fat_tree_size(k as usize) == n {
                fat_tree(k as usize)
            } else {
                Err(TopologyError::Unrealizable { shape: "fat_tree", n: n as u128 })
            }
        }
        TopologyKind::Dragonfly { a: 0, p: 0, h: 0 } => dragonfly_for(n),
        TopologyKind::Dragonfly { a, p, h } => {
            if dragonfly_size(a as usize, p as usize, h as usize) == n {
                dragonfly(a as usize, p as usize, h as usize)
            } else {
                Err(TopologyError::Unrealizable { shape: "dragonfly", n: n as u128 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape() {
        let t = linear(5).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn single_node_topologies() {
        for t in [
            linear(1).unwrap(),
            ring(1).unwrap(),
            mesh(1, 1).unwrap(),
            hypercube(0).unwrap(),
            star(1).unwrap(),
            complete(1).unwrap(),
        ] {
            assert_eq!(t.len(), 1);
            assert_eq!(t.edge_count(), 0);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn zero_sized_requests_are_typed_errors() {
        assert_eq!(linear(0).unwrap_err(), TopologyError::Empty { shape: "linear" });
        assert_eq!(ring(0).unwrap_err(), TopologyError::Empty { shape: "ring" });
        assert_eq!(mesh(0, 5).unwrap_err(), TopologyError::Empty { shape: "mesh" });
        assert_eq!(mesh(5, 0).unwrap_err(), TopologyError::Empty { shape: "mesh" });
        assert_eq!(torus(0, 0).unwrap_err(), TopologyError::Empty { shape: "torus" });
        assert_eq!(star(0).unwrap_err(), TopologyError::Empty { shape: "star" });
        assert_eq!(
            dragonfly(2, 0, 1).unwrap_err(),
            TopologyError::Empty { shape: "dragonfly" }
        );
    }

    #[test]
    fn oversize_requests_are_typed_errors_not_wraps() {
        // > 2^32 - 1 nodes: every shape must refuse.
        let big = MAX_NODES + 1;
        assert!(matches!(linear(big), Err(TopologyError::TooManyNodes { .. })));
        assert!(matches!(ring(big), Err(TopologyError::TooManyNodes { .. })));
        assert!(matches!(
            binary_tree(big),
            Err(TopologyError::TooManyNodes { .. })
        ));
        assert!(matches!(hypercube(32), Err(TopologyError::TooManyNodes { .. })));
        // Mesh extent product overflowing usize is caught before wrapping.
        let e = mesh(usize::MAX, usize::MAX).unwrap_err();
        match e {
            TopologyError::TooManyNodes { shape, requested, .. } => {
                assert_eq!(shape, "mesh");
                assert_eq!(requested, usize::MAX as u128 * usize::MAX as u128);
            }
            other => panic!("expected TooManyNodes, got {other:?}"),
        }
        // 2^32 exactly is one past the ceiling (ids 0..2^32-1 inclusive).
        assert!(matches!(
            mesh(1 << 16, 1 << 16),
            Err(TopologyError::TooManyNodes { .. })
        ));
        // Complete caps lower (quadratic adjacency).
        assert!(matches!(
            complete(COMPLETE_MAX_NODES + 1),
            Err(TopologyError::TooManyNodes { max: 4096, .. })
        ));
        assert!(complete(64).is_ok());
    }

    #[test]
    fn ring_shape() {
        let t = ring(6).unwrap();
        assert_eq!(t.edge_count(), 6);
        assert!(t.nodes().all(|u| t.degree(u) == 2));
        assert!(t.adjacent(NodeId(0), NodeId(5)));
    }

    #[test]
    fn ring_of_two_is_single_edge() {
        let t = ring(2).unwrap();
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.kind(), TopologyKind::Ring);
    }

    #[test]
    fn mesh_shape() {
        let t = mesh(4, 4).unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.edge_count(), 24);
        assert_eq!(t.degree(NodeId(0)), 2); // corner
        assert_eq!(t.degree(NodeId(1)), 3); // edge
        assert_eq!(t.degree(NodeId(5)), 4); // interior
        assert!(t.max_degree() <= 4, "mesh must fit 4 transputer links");
    }

    #[test]
    fn mesh_for_picks_squarest() {
        let kind_of = |n: usize| mesh_for(n).unwrap().kind();
        assert_eq!(kind_of(16), TopologyKind::Mesh { rows: 4, cols: 4 });
        assert_eq!(kind_of(8), TopologyKind::Mesh { rows: 2, cols: 4 });
        assert_eq!(kind_of(4), TopologyKind::Mesh { rows: 2, cols: 2 });
        assert_eq!(kind_of(2), TopologyKind::Mesh { rows: 1, cols: 2 });
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..200 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
        assert_eq!(isqrt(usize::MAX), (1 << 32) - 1);
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube(4).unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.edge_count(), 32);
        assert!(t.nodes().all(|u| t.degree(u) == 4));
        assert!(t.adjacent(NodeId(0b0101), NodeId(0b0100)));
        assert!(!t.adjacent(NodeId(0b0101), NodeId(0b0110)));
    }

    #[test]
    fn transputer_link_budget() {
        // Every topology the paper configures must respect the T805's four
        // physical links per processor.
        for t in [
            linear(16).unwrap(),
            ring(16).unwrap(),
            mesh(4, 4).unwrap(),
            hypercube(4).unwrap(),
        ] {
            assert!(t.max_degree() <= 4, "{} exceeds 4 links", t.kind());
        }
    }

    #[test]
    fn nap_backbone_is_connected_16_node() {
        let t = nap_backbone();
        assert_eq!(t.len(), 16);
        assert!(t.is_connected());
        assert!(t.max_degree() <= 4);
        // A nap chain is a 16-node path.
        assert_eq!(t.edge_count(), 15);
    }

    #[test]
    fn by_kind_dispatch() {
        assert_eq!(
            by_kind(TopologyKind::Hypercube { dim: 0 }, 8).unwrap().len(),
            8
        );
        assert!(matches!(
            by_kind(TopologyKind::Hypercube { dim: 0 }, 6),
            Err(TopologyError::Unrealizable { shape: "hypercube", n: 6 })
        ));
        assert_eq!(by_kind(TopologyKind::Linear, 3).unwrap().len(), 3);
        assert_eq!(
            by_kind(TopologyKind::Mesh { rows: 0, cols: 0 }, 8)
                .unwrap()
                .kind(),
            TopologyKind::Mesh { rows: 2, cols: 4 }
        );
    }

    #[test]
    fn torus_shape() {
        let t = torus(4, 4).unwrap();
        assert_eq!(t.len(), 16);
        assert!(t.nodes().all(|u| t.degree(u) == 4), "torus is regular");
        assert!(t.max_degree() <= 4, "must fit 4 transputer links");
        assert_eq!(t.edge_count(), 32);
        assert!(t.adjacent(NodeId(0), NodeId(3)), "row wraparound");
        assert!(t.adjacent(NodeId(0), NodeId(12)), "column wraparound");
        // Degenerate extents collapse gracefully.
        assert_eq!(torus(1, 4).unwrap().edge_count(), 4); // ring of 4
        assert_eq!(torus(2, 2).unwrap().edge_count(), 4); // no double edges
    }

    #[test]
    fn torus_beats_mesh_on_distance() {
        let m = crate::metrics::metrics(&mesh(4, 4).unwrap());
        let t = crate::metrics::metrics(&torus(4, 4).unwrap());
        assert!(t.diameter < m.diameter, "wraparound halves the diameter");
        assert!(t.avg_distance < m.avg_distance);
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(15).unwrap();
        assert_eq!(t.edge_count(), 14);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(1)), 3);
        assert_eq!(t.degree(NodeId(14)), 1);
        assert!(t.max_degree() <= 3);
        assert!(t.is_connected());
        // Root to a deep leaf: down the left spine.
        assert_eq!(t.bfs_distances(NodeId(0))[7], 3);
    }

    #[test]
    fn fat_tree_shape() {
        // k = 4: 16 hosts, 8 edge, 8 agg, 4 core = 36 vertices, degree k.
        let t = fat_tree(4).unwrap();
        assert_eq!(t.len(), 36);
        assert_eq!(fat_tree_size(4), 36);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 1, "hosts hang off one edge switch");
        for sw in 16..36 {
            assert_eq!(t.degree(NodeId(sw)), 4, "switch radix is k");
        }
        // Edge count: k²/4 host links per pod × k pods + (k/2)² edge-agg
        // per pod × k + (k/2)² agg-core per group × k/2 groups... = 16+16+16.
        assert_eq!(t.edge_count(), 48);
        assert_eq!(fat_tree_size(2), 7);
        assert_eq!(fat_tree_size(8), 208);
        assert_eq!(
            fat_tree_for(36).unwrap().kind(),
            TopologyKind::FatTree { k: 4 }
        );
        assert!(matches!(
            fat_tree_for(37),
            Err(TopologyError::Unrealizable { shape: "fat_tree", n: 37 })
        ));
        assert!(matches!(fat_tree(3), Err(TopologyError::Unrealizable { .. })));
        assert!(matches!(fat_tree(2600), Err(TopologyError::TooManyNodes { .. })));
    }

    #[test]
    fn dragonfly_shape() {
        // a=3, p=3, h=1: 4 groups of 3 routers + 9 terminals = 48 vertices.
        let t = dragonfly(3, 3, 1).unwrap();
        assert_eq!(t.len(), 48);
        assert_eq!(dragonfly_size(3, 3, 1), 48);
        assert!(t.is_connected());
        // Router 0 of group 0: 3 terminals + 2 intra-group + 1 global.
        assert_eq!(t.degree(NodeId(0)), 6);
        assert_eq!(t.degree(NodeId(1)), 1, "terminals hang off their router");
        // One global link between every group pair: C(4,2) = 6 globals.
        let intra = 4 * (3 + 9); // per group: C(3,2) router pairs + 9 terminal links
        assert_eq!(t.edge_count(), intra + 6);
        assert_eq!(
            dragonfly_for(108).unwrap().kind(),
            TopologyKind::Dragonfly { a: 4, p: 2, h: 2 }
        );
        assert!(matches!(
            dragonfly_for(100),
            Err(TopologyError::Unrealizable { shape: "dragonfly", n: 100 })
        ));
    }

    #[test]
    fn by_kind_modern_topologies() {
        assert_eq!(by_kind(TopologyKind::FatTree { k: 0 }, 36).unwrap().len(), 36);
        assert!(by_kind(TopologyKind::FatTree { k: 0 }, 35).is_err());
        assert_eq!(by_kind(TopologyKind::FatTree { k: 4 }, 36).unwrap().len(), 36);
        assert!(by_kind(TopologyKind::FatTree { k: 4 }, 16).is_err());
        assert_eq!(
            by_kind(TopologyKind::Dragonfly { a: 1, p: 7, h: 1 }, 16)
                .unwrap()
                .len(),
            16
        );
        assert!(by_kind(TopologyKind::Dragonfly { a: 1, p: 7, h: 1 }, 12).is_err());
        assert_eq!(
            by_kind(TopologyKind::Dragonfly { a: 0, p: 0, h: 0 }, 12)
                .unwrap()
                .kind(),
            TopologyKind::Dragonfly { a: 2, p: 1, h: 1 }
        );
    }

    #[test]
    fn complete_and_star() {
        let c = complete(5).unwrap();
        assert_eq!(c.edge_count(), 10);
        let s = star(5).unwrap();
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId(0)), 4);
    }
}
