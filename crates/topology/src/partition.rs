//! System partitioning.
//!
//! The paper's space-sharing and hybrid policies split the 16-processor
//! machine into `16/p` equal partitions of `p` processors; each partition is
//! then wired (via the C004 switches) as its own linear array, ring, mesh or
//! hypercube. A [`PartitionPlan`] captures that: contiguous blocks of global
//! processors, each with a local topology and the mapping between local and
//! global processor indices.

use crate::build;
use crate::types::{NodeId, Topology, TopologyKind};

/// One partition: a contiguous block of global processors with its own
/// interconnect.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Index of this partition within the plan.
    pub id: usize,
    /// Global index of the partition's first processor.
    pub base: usize,
    /// The partition's interconnect (over `size` local nodes).
    pub topology: Topology,
}

impl Partition {
    /// Number of processors in this partition.
    pub fn size(&self) -> usize {
        self.topology.len()
    }

    /// Map a local node id to the global processor index.
    pub fn to_global(&self, local: NodeId) -> usize {
        assert!(local.idx() < self.size(), "local id out of range");
        self.base + local.idx()
    }

    /// Map a global processor index to the local node id.
    ///
    /// # Panics
    /// Panics if the processor is not in this partition.
    pub fn to_local(&self, global: usize) -> NodeId {
        assert!(
            self.contains(global),
            "processor {global} not in partition {}",
            self.id
        );
        NodeId::from_index(global - self.base)
    }

    /// True if the global processor index belongs to this partition.
    pub fn contains(&self, global: usize) -> bool {
        global >= self.base && global < self.base + self.size()
    }
}

/// Why an equal partitioning could not be built. Carries enough context
/// for the message alone to identify the bad input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A size was zero.
    ZeroSize {
        /// Requested machine size.
        system_size: usize,
        /// Requested partition size.
        partition_size: usize,
    },
    /// `partition_size` does not divide `system_size`.
    NotDivisible {
        /// Requested machine size.
        system_size: usize,
        /// Requested partition size.
        partition_size: usize,
    },
    /// The topology cannot be realized over `partition_size` nodes (a
    /// hypercube needs a power of two).
    Unrealizable {
        /// Requested partition size.
        partition_size: usize,
        /// Requested partition topology.
        kind: TopologyKind,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanError::ZeroSize { system_size, partition_size } => write!(
                f,
                "cannot partition a {system_size}-processor machine into \
                 partitions of {partition_size}: sizes must be at least 1"
            ),
            PlanError::NotDivisible { system_size, partition_size } => write!(
                f,
                "partition size {partition_size} does not divide the \
                 {system_size}-processor machine evenly; pick a divisor of \
                 {system_size}"
            ),
            PlanError::Unrealizable { partition_size, kind } => write!(
                f,
                "a {kind} topology cannot be wired over {partition_size} \
                 nodes (hypercubes need a power-of-two partition size)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// An equal partitioning of a `system_size`-processor machine.
///
/// ```
/// use parsched_topology::{PartitionPlan, TopologyKind, NodeId};
///
/// let plan = PartitionPlan::equal(16, 4, TopologyKind::Ring).unwrap();
/// assert_eq!(plan.count(), 4);
/// let third = &plan.partitions[2];
/// assert_eq!(third.to_global(NodeId(1)), 9); // local node 1 = processor 9
/// assert!(PartitionPlan::equal(16, 3, TopologyKind::Ring).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Total processors in the machine.
    pub system_size: usize,
    /// Processors per partition.
    pub partition_size: usize,
    /// The partitions, in base order.
    pub partitions: Vec<Partition>,
}

impl PartitionPlan {
    /// Split `system_size` processors into equal contiguous partitions of
    /// `partition_size`, each wired as `kind`.
    ///
    /// Returns `None` when the combination is unrealizable: `partition_size`
    /// must divide `system_size`, and a hypercube partition needs a
    /// power-of-two size. [`PartitionPlan::try_equal`] says *why*.
    pub fn equal(
        system_size: usize,
        partition_size: usize,
        kind: TopologyKind,
    ) -> Option<PartitionPlan> {
        PartitionPlan::try_equal(system_size, partition_size, kind).ok()
    }

    /// Like [`PartitionPlan::equal`], but a rejected combination reports
    /// the reason as a typed [`PlanError`] instead of a bare `None`.
    pub fn try_equal(
        system_size: usize,
        partition_size: usize,
        kind: TopologyKind,
    ) -> Result<PartitionPlan, PlanError> {
        if partition_size == 0 || system_size == 0 {
            return Err(PlanError::ZeroSize { system_size, partition_size });
        }
        if !system_size.is_multiple_of(partition_size) {
            return Err(PlanError::NotDivisible { system_size, partition_size });
        }
        let count = system_size / partition_size;
        let mut partitions = Vec::with_capacity(count);
        for id in 0..count {
            let topology = build::by_kind(kind, partition_size)
                .map_err(|_| PlanError::Unrealizable { partition_size, kind })?;
            partitions.push(Partition {
                id,
                base: id * partition_size,
                topology,
            });
        }
        Ok(PartitionPlan {
            system_size,
            partition_size,
            partitions,
        })
    }

    /// Number of partitions.
    pub fn count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition owning a global processor index.
    pub fn partition_of(&self, global: usize) -> &Partition {
        assert!(global < self.system_size, "processor index out of range");
        &self.partitions[global / self.partition_size]
    }
}

/// The paper's figure-axis label for a partition configuration, e.g. `8L`
/// (partition size 8, linear) or `1` (size-1 partitions need no network).
pub fn config_label(partition_size: usize, kind: TopologyKind) -> String {
    if partition_size == 1 {
        "1".to_string()
    } else {
        format!("{partition_size}{}", kind.label())
    }
}

/// The partition configurations shown on the paper's X axes: sizes 1..16 in
/// powers of two, each with every distinct realizable topology.
///
/// * size 1 — a single bare processor (topology irrelevant; listed once);
/// * size 2 — `L` and `R` coincide (a single edge); listed once as `2L`;
/// * size 4, 8 — `L`, `R`, `M`, `H`;
/// * size 16 — `L`, `R`, `M` (the paper's machine cannot wire a 16-node
///   hypercube because one transputer link is reserved for the host; we
///   follow the paper and omit it by default, `include_16h` adds it).
pub fn paper_configs(include_16h: bool) -> Vec<(usize, TopologyKind)> {
    use TopologyKind::*;
    let mesh = Mesh { rows: 0, cols: 0 }; // extents filled by the builder
    let hc = Hypercube { dim: 0 };
    let mut configs = vec![
        (1, Linear),
        (2, Linear),
        (4, Linear),
        (4, Ring),
        (4, Mesh { rows: 0, cols: 0 }),
        (4, Hypercube { dim: 0 }),
        (8, Linear),
        (8, Ring),
        (8, mesh),
        (8, hc),
        (16, Linear),
        (16, Ring),
        (16, mesh),
    ];
    if include_16h {
        configs.push((16, hc));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_partitioning_shapes() {
        let plan = PartitionPlan::equal(16, 4, TopologyKind::Ring).unwrap();
        assert_eq!(plan.count(), 4);
        for (i, p) in plan.partitions.iter().enumerate() {
            assert_eq!(p.id, i);
            assert_eq!(p.base, i * 4);
            assert_eq!(p.size(), 4);
            assert_eq!(p.topology.kind(), TopologyKind::Ring);
        }
    }

    #[test]
    fn global_local_round_trip() {
        let plan = PartitionPlan::equal(16, 8, TopologyKind::Linear).unwrap();
        for g in 0..16 {
            let p = plan.partition_of(g);
            let l = p.to_local(g);
            assert_eq!(p.to_global(l), g);
        }
    }

    #[test]
    fn unrealizable_combinations_rejected() {
        assert!(PartitionPlan::equal(16, 3, TopologyKind::Linear).is_none());
        assert!(PartitionPlan::equal(16, 0, TopologyKind::Linear).is_none());
        assert!(
            PartitionPlan::equal(12, 6, TopologyKind::Hypercube { dim: 0 }).is_none(),
            "6-node hypercube must be rejected"
        );
    }

    #[test]
    fn try_equal_names_the_reason() {
        let err = PartitionPlan::try_equal(16, 3, TopologyKind::Linear).unwrap_err();
        assert_eq!(
            err,
            PlanError::NotDivisible { system_size: 16, partition_size: 3 }
        );
        assert!(err.to_string().contains("does not divide"), "{err}");
        assert!(err.to_string().contains("divisor of 16"), "{err}");

        let err = PartitionPlan::try_equal(16, 0, TopologyKind::Linear).unwrap_err();
        assert!(matches!(err, PlanError::ZeroSize { .. }));
        assert!(err.to_string().contains("at least 1"), "{err}");

        let err = PartitionPlan::try_equal(12, 6, TopologyKind::Hypercube { dim: 0 })
            .unwrap_err();
        assert!(matches!(err, PlanError::Unrealizable { partition_size: 6, .. }));
        assert!(err.to_string().contains("power-of-two"), "{err}");

        assert!(PartitionPlan::try_equal(16, 4, TopologyKind::Ring).is_ok());
    }

    #[test]
    #[should_panic(expected = "not in partition")]
    fn to_local_checks_membership() {
        let plan = PartitionPlan::equal(16, 4, TopologyKind::Linear).unwrap();
        plan.partitions[0].to_local(5);
    }

    #[test]
    fn paper_config_list() {
        let configs = paper_configs(false);
        assert_eq!(configs.len(), 13);
        // All realizable against a 16-processor machine.
        for (size, kind) in &configs {
            assert!(
                PartitionPlan::equal(16, *size, *kind).is_some(),
                "config {size}{kind} not realizable"
            );
        }
        assert_eq!(paper_configs(true).len(), 14);
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(config_label(1, TopologyKind::Linear), "1");
        assert_eq!(config_label(8, TopologyKind::Linear), "8L");
        assert_eq!(config_label(16, TopologyKind::Mesh { rows: 4, cols: 4 }), "16M");
        assert_eq!(config_label(4, TopologyKind::Hypercube { dim: 2 }), "4H");
    }
}
