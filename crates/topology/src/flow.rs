//! Virtual-channel classes and deadlock analysis for wormhole routing.
//!
//! Wormhole switching holds links while a worm is in flight, so routing
//! cycles become buffer-wait cycles: deadlock. The classic cure (Dally &
//! Seitz) is to split each physical channel into virtual-channel *classes*
//! and force the class to never decrease along a path, with datelines (or
//! phase changes) breaking every cycle of the underlying route. This module
//! owns both halves of that argument:
//!
//! * [`vc_classes`] assigns a class to every hop of a routed path —
//!   dateline escape for rings and tori (per dimension), the up/down phase
//!   turn for fat-trees, and globals-crossed for dragonflies. Acyclic
//!   shapes need only one class.
//! * [`channel_dependency_cycle`] builds the channel-dependency graph over
//!   `(channel, class)` nodes for a (topology, router, class assignment)
//!   triple and returns a witness cycle if one exists. The wormhole test
//!   layer asserts it returns `None` for every shipped combination — and
//!   that it *does* catch a deliberately cyclic no-escape fixture.

use std::collections::HashMap;

use crate::build::{DragonflyGeom, FatTreeGeom};
use crate::route::Router;
use crate::types::{Channel, NodeId, Topology, TopologyKind};

/// Number of virtual-channel classes wormhole switching needs on this
/// shape: 2 datelined classes for rings/tori, 2 phases for fat-trees,
/// 3 (globals crossed) for dragonflies, 1 everywhere the canonical route
/// is already cycle-free.
pub fn vc_class_count(kind: TopologyKind) -> u8 {
    match kind {
        TopologyKind::Ring | TopologyKind::Torus { .. } | TopologyKind::FatTree { .. } => 2,
        TopologyKind::Dragonfly { .. } => 3,
        _ => 1,
    }
}

/// The virtual-channel class of every hop of `path` (as produced by
/// [`Router::path`], i.e. excluding `src`), on a topology of `kind` with
/// `n` nodes. Classes never decrease along a path; that monotonicity is
/// what confines would-be cycles to a single class, where the dateline /
/// phase structure breaks them.
pub fn vc_classes(kind: TopologyKind, n: usize, src: NodeId, path: &[NodeId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(path.len());
    match kind {
        TopologyKind::Ring => {
            // Dateline between n-1 and 0: crossing it escapes to class 1.
            let mut class = 0u8;
            let mut prev = src;
            for &hop in path {
                let (lo, hi) = (prev.idx().min(hop.idx()), prev.idx().max(hop.idx()));
                if n > 2 && lo == 0 && hi == n - 1 {
                    class = 1;
                }
                out.push(class);
                prev = hop;
            }
        }
        TopologyKind::Torus { rows, cols } => {
            // Independent dateline per dimension: a row-ring crossing must
            // not escalate column-ring hops, or escaped segments could
            // re-enter their own dateline.
            let (rows, cols) = (rows as usize, cols as usize);
            let mut crossed = [false; 2];
            let mut prev = src;
            for &hop in path {
                let (pr, pc) = (prev.idx() / cols, prev.idx() % cols);
                let (hr, hc) = (hop.idx() / cols, hop.idx() % cols);
                let (dim, a, b, len) = if pr == hr {
                    (0, pc, hc, cols)
                } else {
                    (1, pr, hr, rows)
                };
                if len > 2 && a.max(b) - a.min(b) == len - 1 {
                    crossed[dim] = true;
                }
                out.push(crossed[dim] as u8);
                prev = hop;
            }
        }
        TopologyKind::FatTree { k } => {
            // Class 0 while climbing (and on turn-free descents); the
            // single down->up turn of up*/down* escapes to class 1.
            let g = FatTreeGeom::new(k as usize);
            let mut class = 0u8;
            let mut going_down = false;
            let mut prev = src;
            for &hop in path {
                let up = g.level(hop.idx()) > g.level(prev.idx());
                if up && going_down {
                    class = 1;
                }
                out.push(class);
                going_down = !up;
                prev = hop;
            }
        }
        TopologyKind::Dragonfly { a, p, h } => {
            // Class = global links already crossed (Valiant uses up to 2).
            let g = DragonflyGeom::new(a as usize, p as usize, h as usize);
            let mut globals = 0u8;
            let mut prev = src;
            for &hop in path {
                out.push(globals);
                if g.group(prev.idx()) != g.group(hop.idx()) {
                    globals += 1;
                }
                prev = hop;
            }
        }
        _ => out.resize(path.len(), 0),
    }
    out
}

/// Search the channel-dependency graph of (`topo`, `router`, `classes`)
/// for a cycle. Nodes are `(directed channel, class)` pairs; a dependency
/// edge connects every pair of consecutive hops on every routed path (a
/// worm holding the first channel may be waiting on the second). Returns
/// a witness cycle (each entry's `to` is the next entry's `from`), or
/// `None` when the graph is acyclic and wormhole routing cannot deadlock.
pub fn channel_dependency_cycle<F>(
    topo: &Topology,
    router: &Router,
    classes: F,
) -> Option<Vec<(Channel, u8)>>
where
    F: Fn(NodeId, &[NodeId]) -> Vec<u8>,
{
    let mut index: HashMap<(u32, u32, u8), usize> = HashMap::new();
    let mut nodes: Vec<(Channel, u8)> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    for src in topo.nodes() {
        for dst in topo.nodes() {
            if src == dst {
                continue;
            }
            let path = router.path(src, dst);
            let cls = classes(src, &path);
            assert_eq!(cls.len(), path.len(), "one class per hop");
            let mut prev = src;
            let mut prev_node: Option<usize> = None;
            for (i, &hop) in path.iter().enumerate() {
                let key = (prev.0, hop.0, cls[i]);
                let id = *index.entry(key).or_insert_with(|| {
                    nodes.push((Channel { from: prev, to: hop }, cls[i]));
                    deps.push(Vec::new());
                    nodes.len() - 1
                });
                if let Some(p) = prev_node {
                    if !deps[p].contains(&id) {
                        deps[p].push(id);
                    }
                }
                prev_node = Some(id);
                prev = hop;
            }
        }
    }

    // Iterative three-color DFS (graphs reach tens of thousands of nodes;
    // recursion depth is unbounded).
    let mut state = vec![0u8; nodes.len()]; // 0 new, 1 on stack, 2 done
    for start in 0..nodes.len() {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(top) = stack.last_mut() {
            let (u, i) = *top;
            if i < deps[u].len() {
                top.1 += 1;
                let v = deps[u][i];
                match state[v] {
                    0 => {
                        state[v] = 1;
                        stack.push((v, 0));
                    }
                    1 => {
                        let pos = stack
                            .iter()
                            .position(|&(w, _)| w == v)
                            .expect("on-stack node must be in the stack");
                        return Some(stack[pos..].iter().map(|&(w, _)| nodes[w]).collect());
                    }
                    _ => {}
                }
            } else {
                state[u] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Assert the canonical (router, class) combination for `topo` is
/// deadlock-free, panicking with the witness cycle otherwise.
pub fn assert_deadlock_free(topo: &Topology) {
    let kind = topo.kind();
    let n = topo.len();
    let router = Router::for_topology(topo);
    if let Some(cycle) =
        channel_dependency_cycle(topo, &router, |src, path| vc_classes(kind, n, src, path))
    {
        panic!("channel-dependency cycle on {kind}: {cycle:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn canonical_combinations_are_deadlock_free() {
        for topo in [
            build::linear(8).unwrap(),
            build::ring(6).unwrap(),
            build::ring(9).unwrap(),
            build::mesh(4, 4).unwrap(),
            build::hypercube(4).unwrap(),
            build::torus(4, 4).unwrap(),
            build::torus(3, 5).unwrap(),
            build::torus(2, 6).unwrap(),
            build::binary_tree(15).unwrap(),
            build::star(8).unwrap(),
            build::complete(6).unwrap(),
            build::nap_backbone(),
            build::fat_tree(4).unwrap(),
            build::fat_tree(8).unwrap(),
            build::dragonfly(2, 1, 1).unwrap(),
            build::dragonfly(3, 3, 1).unwrap(),
            build::dragonfly(4, 2, 2).unwrap(),
        ] {
            assert_deadlock_free(&topo);
        }
    }

    #[test]
    fn valiant_dragonfly_is_deadlock_free_with_three_classes() {
        for topo in [build::dragonfly(3, 3, 1).unwrap(), build::dragonfly(4, 2, 2).unwrap()] {
            let kind = topo.kind();
            let n = topo.len();
            let router = Router::dragonfly_valiant(&topo);
            let cycle = channel_dependency_cycle(&topo, &router, |src, path| {
                vc_classes(kind, n, src, path)
            });
            assert_eq!(cycle, None, "valiant CDG must be acyclic");
        }
    }

    /// The deliberately cyclic fixture: a ring without the dateline escape
    /// (every hop forced onto class 0) wait-cycles around the wraparound,
    /// and the checker must say so.
    #[test]
    fn no_escape_ring_fixture_is_caught() {
        let topo = build::ring(6).unwrap();
        let router = Router::for_topology(&topo);
        let cycle = channel_dependency_cycle(&topo, &router, |_, path| vec![0; path.len()])
            .expect("class-collapsed ring must contain a dependency cycle");
        assert!(cycle.len() >= 3, "witness too short: {cycle:?}");
        // The witness must be a real cycle: consecutive channels chain.
        for (i, (ch, _)) in cycle.iter().enumerate() {
            let (next, _) = cycle[(i + 1) % cycle.len()];
            assert_eq!(ch.to, next.from, "witness does not chain: {cycle:?}");
        }
    }

    #[test]
    fn no_escape_torus_fixture_is_caught() {
        let topo = build::torus(4, 4).unwrap();
        let router = Router::for_topology(&topo);
        assert!(
            channel_dependency_cycle(&topo, &router, |_, path| vec![0; path.len()]).is_some(),
            "class-collapsed torus must contain a dependency cycle"
        );
    }

    #[test]
    fn class_counts_match_assignments() {
        for topo in [
            build::ring(8).unwrap(),
            build::torus(4, 4).unwrap(),
            build::fat_tree(4).unwrap(),
            build::dragonfly(3, 3, 1).unwrap(),
            build::mesh(3, 3).unwrap(),
        ] {
            let kind = topo.kind();
            let n = topo.len();
            let count = vc_class_count(kind);
            let router = Router::for_topology(&topo);
            for src in topo.nodes() {
                for dst in topo.nodes() {
                    let path = router.path(src, dst);
                    for (i, c) in vc_classes(kind, n, src, &path).iter().enumerate() {
                        assert!(
                            *c < count,
                            "hop {i} of {src}->{dst} on {kind} uses class {c} >= {count}"
                        );
                    }
                }
            }
        }
    }
}
