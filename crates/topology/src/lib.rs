//! # parsched-topology
//!
//! Interconnection networks for the simulated Transputer multicomputer:
//! the four topologies the paper configures (linear array, ring, 2-D mesh,
//! hypercube) plus test/ablation extras, deterministic minimal
//! [routing](route) (BFS, dimension-order, e-cube),
//! [graph metrics](metrics) (diameter, average distance, bisection width),
//! and the [partitioning](partition) of the 16-processor system into equal
//! sub-machines used by the space-sharing and hybrid policies.
//!
//! ```
//! use parsched_topology::{build, route::Router, types::NodeId};
//!
//! let cube = build::hypercube(4); // the 16-node machine as a hypercube
//! let router = Router::for_topology(&cube);
//! assert_eq!(router.hops(NodeId(0b0000), NodeId(0b1111)), 4);
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod metrics;
pub mod partition;
pub mod route;
pub mod shard;
pub mod types;

pub use build::{
    binary_tree, by_kind, complete, hypercube, linear, mesh, mesh_for, nap_backbone, ring,
    star, torus, torus_for,
};
pub use metrics::{bisection_width, diameter, distance, metrics, TopologyMetrics};
pub use partition::{config_label, paper_configs, Partition, PartitionPlan, PlanError};
pub use route::Router;
pub use shard::ShardPlan;
pub use types::{Channel, NodeId, Topology, TopologyKind};
