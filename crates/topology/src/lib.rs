//! # parsched-topology
//!
//! Interconnection networks for the simulated Transputer multicomputer:
//! the four topologies the paper configures (linear array, ring, 2-D mesh,
//! hypercube) plus test/ablation extras and two modern shapes (k-ary
//! [fat-trees](build::fat_tree) and [dragonflies](build::dragonfly)),
//! deterministic [routing](route) (BFS, dimension-order, e-cube,
//! up*/down*, dragonfly minimal/Valiant),
//! [virtual-channel classes and deadlock analysis](flow) for the wormhole
//! interconnect, [graph metrics](metrics) (diameter, average distance,
//! bisection width), and the [partitioning](partition) of the system into
//! equal sub-machines used by the space-sharing and hybrid policies.
//!
//! Node ids are 32-bit: machines up to `u32::MAX` nodes can be addressed,
//! and every builder returns a typed [`TopologyError`] (instead of
//! silently wrapping indices) when a request exceeds that ceiling.
//!
//! ```
//! use parsched_topology::{build, route::Router, types::NodeId};
//!
//! let cube = build::hypercube(4).unwrap(); // the 16-node machine as a hypercube
//! let router = Router::for_topology(&cube);
//! assert_eq!(router.hops(NodeId(0b0000), NodeId(0b1111)), 4);
//! assert!(build::mesh(1 << 16, 1 << 16).is_err()); // 2^32 nodes: too many
//! ```

#![warn(missing_docs)]
// The silent-truncation bug class this crate once had (bare `as u16` node
// index casts wrapping past 65 536 nodes) stays fixed: no lossy numeric
// cast may be written here without an explicit, justified `allow`.
#![deny(clippy::cast_possible_truncation)]

pub mod build;
pub mod flow;
pub mod metrics;
pub mod partition;
pub mod route;
pub mod shard;
pub mod types;

pub use build::{
    binary_tree, by_kind, complete, dragonfly, dragonfly_for, dragonfly_size, fat_tree,
    fat_tree_for, fat_tree_size, hypercube, linear, mesh, mesh_for, nap_backbone, ring,
    star, torus, torus_for, DragonflyGeom, FatTreeGeom, COMPLETE_MAX_NODES,
};
pub use flow::{channel_dependency_cycle, vc_class_count, vc_classes};
pub use metrics::{bisection_width, diameter, distance, metrics, TopologyMetrics};
pub use partition::{config_label, paper_configs, Partition, PartitionPlan, PlanError};
pub use route::Router;
pub use shard::ShardPlan;
pub use types::{Channel, NodeId, Topology, TopologyError, TopologyKind, MAX_NODES};
