//! Core graph types for interconnection networks.

use std::fmt;

/// Largest node count any builder will accept: `NodeId` is a `u32`, and the
/// error contract promises that requesting more than `u32::MAX` nodes fails
/// loudly instead of wrapping. (Complete graphs cap far lower — their
/// adjacency is quadratic; see [`crate::build::complete`].)
pub const MAX_NODES: usize = u32::MAX as usize;

/// Why a topology could not be built. Builders return this instead of
/// silently truncating oversize indices (the pre-PR-10 behavior wrapped
/// `usize` node indices through `as u16`, corrupting any adjacency past
/// 65 536 nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The request needs more node ids than the shape can address.
    /// `requested` is reported in `u128` so even an overflowing
    /// `rows * cols` product is shown exactly.
    TooManyNodes {
        /// Builder name (`"mesh"`, `"complete"`, ...).
        shape: &'static str,
        /// Requested node count.
        requested: u128,
        /// The shape's ceiling ([`MAX_NODES`] unless the shape caps lower).
        max: u64,
    },
    /// The shape cannot be realized with the requested size or parameters
    /// (a hypercube needs a power-of-two node count, a fat-tree an even
    /// radix, ...).
    Unrealizable {
        /// Builder name.
        shape: &'static str,
        /// The offending size (or parameter, for parameterized shapes).
        n: u128,
    },
    /// A zero extent was requested; every shape needs at least one node.
    Empty {
        /// Builder name.
        shape: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::TooManyNodes { shape, requested, max } => write!(
                f,
                "{shape}: {requested} nodes exceed the {max}-node ceiling \
                 (NodeId is 32-bit; complete graphs cap lower because their \
                 adjacency is quadratic)"
            ),
            TopologyError::Unrealizable { shape, n } => write!(
                f,
                "{shape}: cannot be realized with size/parameter {n}"
            ),
            TopologyError::Empty { shape } => {
                write!(f, "{shape}: need at least one node")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Index of a node within one topology (local, zero-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a `usize` index. Internal builders validate
    /// the total node count up front and then use [`NodeId::from_index`];
    /// external callers holding an unvalidated index should prefer this.
    #[inline]
    pub fn try_from_index(i: usize) -> Result<NodeId, TopologyError> {
        match u32::try_from(i) {
            Ok(v) => Ok(NodeId(v)),
            Err(_) => Err(TopologyError::TooManyNodes {
                shape: "node index",
                requested: i as u128 + 1,
                max: MAX_NODES as u64,
            }),
        }
    }

    /// Conversion from an index already known to be in range (because the
    /// containing topology's node count was validated at construction).
    /// Still checked — an out-of-range index is a programming error and
    /// panics instead of wrapping.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index exceeds NodeId range"))
    }
}

impl TryFrom<usize> for NodeId {
    type Error = TopologyError;

    fn try_from(i: usize) -> Result<NodeId, TopologyError> {
        NodeId::try_from_index(i)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed channel between two adjacent nodes. The physical Transputer
/// link is bidirectional but full-duplex, so each direction is modelled as
/// its own serializing resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

impl Channel {
    /// Display label, e.g. `"3->7"` (used by observability exporters).
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// The interconnection shapes studied in the paper (§3.1) plus two extras
/// used by tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Chain: node i connected to i±1.
    Linear,
    /// Chain with wraparound.
    Ring,
    /// 2-D mesh, `rows x cols`, no wraparound.
    Mesh {
        /// Number of rows.
        rows: u32,
        /// Number of columns.
        cols: u32,
    },
    /// Binary hypercube of the given dimension.
    Hypercube {
        /// log2 of the node count.
        dim: u8,
    },
    /// 2-D torus (mesh with wraparound), `rows x cols`.
    Torus {
        /// Number of rows.
        rows: u32,
        /// Number of columns.
        cols: u32,
    },
    /// Complete binary tree rooted at node 0 (children of `i` are `2i+1`,
    /// `2i+2`).
    Tree,
    /// Every node adjacent to node 0 (used in unit tests).
    Star,
    /// All pairs adjacent (an idealized crossbar; used in ablations).
    Complete,
    /// Three-level k-ary fat-tree (k even): `k³/4` hosts, `k²/2` edge
    /// switches, `k²/2` aggregation switches, `k²/4` core switches, all
    /// modelled as processors (switches double as compute nodes, as
    /// Transputers did). `k = 0` asks [`crate::build::by_kind`] to derive
    /// `k` from the requested node count.
    FatTree {
        /// Switch radix (even, ≥ 2).
        k: u16,
    },
    /// Dragonfly: `a·h + 1` groups of `a` routers (complete graph within a
    /// group), `p` terminals per router, `h` global links per router, one
    /// global link between every group pair. Routers and terminals are
    /// both processors. All-zero parameters ask
    /// [`crate::build::by_kind`] to derive a balanced `(2h, h, h)`
    /// configuration from the requested node count.
    Dragonfly {
        /// Routers per group.
        a: u16,
        /// Terminals per router.
        p: u16,
        /// Global links per router.
        h: u16,
    },
}

impl TopologyKind {
    /// The single-letter label used on the paper's figure axes
    /// (`L`, `R`, `M`, `H`); extras get lowercase letters.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Linear => "L",
            TopologyKind::Ring => "R",
            TopologyKind::Mesh { .. } => "M",
            TopologyKind::Hypercube { .. } => "H",
            TopologyKind::Torus { .. } => "T",
            TopologyKind::Tree => "t",
            TopologyKind::Star => "s",
            TopologyKind::Complete => "c",
            TopologyKind::FatTree { .. } => "F",
            TopologyKind::Dragonfly { .. } => "D",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Linear => write!(f, "linear"),
            TopologyKind::Ring => write!(f, "ring"),
            TopologyKind::Mesh { rows, cols } => write!(f, "mesh{rows}x{cols}"),
            TopologyKind::Hypercube { dim } => write!(f, "hypercube{dim}"),
            TopologyKind::Torus { rows, cols } => write!(f, "torus{rows}x{cols}"),
            TopologyKind::Tree => write!(f, "tree"),
            TopologyKind::Star => write!(f, "star"),
            TopologyKind::Complete => write!(f, "complete"),
            TopologyKind::FatTree { k } => write!(f, "fattree{k}"),
            TopologyKind::Dragonfly { a, p, h } => write!(f, "dragonfly{a}x{p}x{h}"),
        }
    }
}

/// An undirected interconnection network over `n` nodes, stored as sorted
/// adjacency lists. Immutable once built.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Build from adjacency lists. Lists are normalized (sorted, deduped);
    /// the graph is validated to be simple, symmetric and loop-free.
    ///
    /// # Panics
    /// Panics on a malformed graph (asymmetric edge, self-loop, index out of
    /// range, more than [`MAX_NODES`] nodes) — topologies are constructed by
    /// this crate's builders, so a malformed one is a programming error.
    pub fn from_adjacency(kind: TopologyKind, mut adj: Vec<Vec<NodeId>>) -> Topology {
        let n = adj.len();
        assert!(n <= MAX_NODES, "adjacency exceeds the {MAX_NODES}-node ceiling");
        for (i, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &nb in list.iter() {
                assert!(nb.idx() < n, "adjacency index out of range");
                assert!(nb.idx() != i, "self-loop at node {i}");
            }
        }
        // Symmetry check.
        for i in 0..n {
            let id = NodeId::from_index(i);
            for &nb in &adj[i] {
                assert!(
                    adj[nb.idx()].binary_search(&id).is_ok(),
                    "edge {i}->{nb} has no reverse"
                );
            }
        }
        Topology { kind, adj }
    }

    /// The shape this network was built as.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True for the empty network.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Neighbors of `node`, ascending.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.idx()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.idx()].len()
    }

    /// True if `a` and `b` are directly connected.
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.idx()].binary_search(&b).is_ok()
    }

    /// Every directed channel (both directions of every edge), emitted in
    /// ascending `(from, to)` order (the wiring layer's CSR channel index
    /// relies on this ordering).
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, list)| {
            list.iter().map(move |&to| Channel {
                from: NodeId::from_index(i),
                to,
            })
        })
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// BFS distances from `src` to every node (`u32::MAX` if unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.idx()];
            for &v in self.neighbors(u) {
                if dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// True if every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(|&d| d != u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Topology {
        Topology::from_adjacency(
            TopologyKind::Linear,
            vec![vec![NodeId(1)], vec![NodeId(0), NodeId(2)], vec![NodeId(1)]],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = path3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.degree(NodeId(1)), 2);
        assert!(t.adjacent(NodeId(0), NodeId(1)));
        assert!(!t.adjacent(NodeId(0), NodeId(2)));
        assert_eq!(t.max_degree(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn channels_are_directed_pairs() {
        let t = path3();
        let chans: Vec<Channel> = t.channels().collect();
        assert_eq!(chans.len(), 4); // two edges, both directions
        assert!(chans.contains(&Channel { from: NodeId(0), to: NodeId(1) }));
        assert!(chans.contains(&Channel { from: NodeId(1), to: NodeId(0) }));
    }

    #[test]
    fn channels_emit_in_ascending_from_to_order() {
        let t = path3();
        let chans: Vec<(u32, u32)> =
            t.channels().map(|c| (c.from.0, c.to.0)).collect();
        let mut sorted = chans.clone();
        sorted.sort_unstable();
        assert_eq!(chans, sorted, "CSR wiring depends on this order");
    }

    #[test]
    #[should_panic(expected = "no reverse")]
    fn asymmetric_graph_rejected() {
        Topology::from_adjacency(
            TopologyKind::Linear,
            vec![vec![NodeId(1)], vec![]],
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Topology::from_adjacency(TopologyKind::Linear, vec![vec![NodeId(0)]]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = path3();
        assert_eq!(t.bfs_distances(NodeId(0)), vec![0, 1, 2]);
        assert_eq!(t.bfs_distances(NodeId(1)), vec![1, 0, 1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_adjacency(
            TopologyKind::Linear,
            vec![vec![NodeId(1)], vec![NodeId(0)], vec![NodeId(3)], vec![NodeId(2)]],
        );
        assert!(!t.is_connected());
    }

    #[test]
    fn node_id_checked_conversions() {
        assert_eq!(NodeId::try_from_index(7), Ok(NodeId(7)));
        assert_eq!(NodeId::try_from(MAX_NODES), Ok(NodeId(u32::MAX)));
        assert!(matches!(
            NodeId::try_from_index(MAX_NODES + 1),
            Err(TopologyError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn topology_error_messages_name_the_shape() {
        let e = TopologyError::TooManyNodes {
            shape: "mesh",
            requested: 1 << 33,
            max: MAX_NODES as u64,
        };
        assert!(e.to_string().contains("mesh"), "{e}");
        assert!(e.to_string().contains("ceiling"), "{e}");
        let e = TopologyError::Unrealizable { shape: "hypercube", n: 6 };
        assert!(e.to_string().contains("hypercube"), "{e}");
        let e = TopologyError::Empty { shape: "ring" };
        assert!(e.to_string().contains("at least one"), "{e}");
    }
}
