//! Grouping a [`PartitionPlan`]'s partitions into simulation shards.
//!
//! The conservative parallel engine (`parsched-des::shard`) needs the
//! machine cut into regions that interact as little — and as *slowly* — as
//! possible: the minimum inter-shard interaction latency becomes the
//! lookahead window, and partitions are the natural cut. The paper's
//! machine wires each partition as its own closed interconnect (the C004
//! crossbar links partitions only through the host), so a partition never
//! exchanges network traffic with another: shards built from whole
//! partitions are *independent*, the best possible lookahead. A
//! [`ShardPlan`] records the partition → shard assignment; the lookahead
//! classification itself lives with the wiring layer, which knows the
//! channel list.
//!
//! Shards are contiguous runs of partitions with near-equal partition
//! counts, so the assignment is a pure function of `(partitions, shards)` —
//! reproducibility never depends on a hash order.

/// An assignment of a plan's partitions to `K` simulation shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `of_partition[p]` is the shard owning partition `p`.
    pub of_partition: Vec<usize>,
    /// Number of shards (`1 + max(of_partition)`).
    pub shards: usize,
}

impl ShardPlan {
    /// Group `partitions` contiguous partitions into at most `shards`
    /// near-equal shards. More shards than partitions clamps to one
    /// partition per shard (a shard cannot cut below partition granularity
    /// — a partition's nodes share one interconnect and one job state).
    ///
    /// # Panics
    /// Panics when either count is zero.
    pub fn contiguous(partitions: usize, shards: usize) -> ShardPlan {
        assert!(partitions > 0, "need at least one partition");
        assert!(shards > 0, "need at least one shard");
        let k = shards.min(partitions);
        // First `rem` shards get `base + 1` partitions, the rest `base`.
        let base = partitions / k;
        let rem = partitions % k;
        let mut of_partition = Vec::with_capacity(partitions);
        for s in 0..k {
            let size = base + usize::from(s < rem);
            of_partition.extend(std::iter::repeat_n(s, size));
        }
        ShardPlan {
            of_partition,
            shards: k,
        }
    }

    /// Number of partitions covered by the plan.
    pub fn partitions(&self) -> usize {
        self.of_partition.len()
    }

    /// The shard owning partition `p`.
    pub fn shard_of(&self, p: usize) -> usize {
        self.of_partition[p]
    }

    /// The partitions owned by shard `s`, in ascending order.
    pub fn partitions_of(&self, s: usize) -> Vec<usize> {
        (0..self.of_partition.len())
            .filter(|&p| self.of_partition[p] == s)
            .collect()
    }

    /// Whether shard `s` owns the node at `node`, under an equal-split plan
    /// where partition `p` covers nodes `[p*partition_size, (p+1)*partition_size)`.
    ///
    /// This is the ownership test the fault-plan slicer uses: a declared
    /// fault is shipped with exactly the shard that owns the node(s) it
    /// names. Nodes past the last partition belong to no shard.
    pub fn owns_node(&self, s: usize, node: u32, partition_size: usize) -> bool {
        assert!(partition_size > 0, "partition size must be nonzero");
        let p = node as usize / partition_size;
        p < self.of_partition.len() && self.of_partition[p] == s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_blocked_and_balanced() {
        let plan = ShardPlan::contiguous(8, 4);
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.of_partition, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        for s in 0..4 {
            assert_eq!(plan.partitions_of(s).len(), 2);
        }
    }

    #[test]
    fn uneven_split_front_loads_the_remainder() {
        let plan = ShardPlan::contiguous(7, 3);
        assert_eq!(plan.of_partition, vec![0, 0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn oversubscription_clamps_to_partition_count() {
        let plan = ShardPlan::contiguous(4, 8);
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.of_partition, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_shard_owns_everything() {
        let plan = ShardPlan::contiguous(5, 1);
        assert_eq!(plan.of_partition, vec![0; 5]);
        assert_eq!(plan.partitions_of(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn node_ownership_follows_partition_boundaries() {
        // 4 partitions of 4 nodes on 2 shards: shard 0 owns nodes 0..8.
        let plan = ShardPlan::contiguous(4, 2);
        assert!(plan.owns_node(0, 0, 4));
        assert!(plan.owns_node(0, 7, 4));
        assert!(!plan.owns_node(0, 8, 4));
        assert!(plan.owns_node(1, 8, 4));
        assert!(plan.owns_node(1, 15, 4));
        // A node past the covered range belongs to no shard.
        assert!(!plan.owns_node(0, 16, 4));
        assert!(!plan.owns_node(1, 16, 4));
    }

    #[test]
    fn assignment_is_contiguous_and_monotone() {
        for parts in 1..20 {
            for k in 1..10 {
                let plan = ShardPlan::contiguous(parts, k);
                assert_eq!(plan.partitions(), parts);
                let mut prev = 0;
                for &s in &plan.of_partition {
                    assert!(s == prev || s == prev + 1, "non-contiguous assignment");
                    prev = s;
                }
                assert_eq!(prev + 1, plan.shards);
            }
        }
    }
}
