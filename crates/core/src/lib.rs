//! # parsched-core
//!
//! The paper's contribution: processor scheduling policies for a
//! distributed-memory multicomputer, implemented over the simulated
//! Transputer machine of `parsched-machine` and evaluated exactly as
//! Chan, Dandamudi & Majumdar (IPPS 1997) evaluate them.
//!
//! * [`policy`] — static space-sharing, time-sharing/hybrid, the RR-job
//!   quantum rule, and process placement;
//! * [`driver`] — the hierarchical super/partition/local scheduler;
//! * [`experiment`] — run configuration, best/worst static orderings, and
//!   the mean-response-time metric;
//! * [`figures`] — one function per paper figure and ablation;
//! * [`open`] — the open-system front door: arrival streams, heavy-tailed
//!   demand, warm-up-truncated response/slowdown curves over a ρ grid;
//! * [`report`] — the row/series output the paper's figures plot;
//! * [`runner`] — parallel execution of configuration grids;
//! * [`sharded`] — conservative-parallel execution of a single run,
//!   partitioned into topology-region shards with bit-identical results.
//!
//! ```no_run
//! use parsched_core::prelude::*;
//!
//! // Regenerate Figure 4 (matrix multiplication, adaptive architecture).
//! let table = fig4(&FigureOpts::default()).expect("simulation completed");
//! println!("{}", table.to_text());
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod experiment;
pub mod figures;
pub mod open;
pub mod policy;
pub mod report;
pub mod runner;
pub mod sharded;

/// The core crate's commonly used names in one import.
pub mod prelude {
    pub use crate::driver::{Driver, EntryRecord};
    pub use crate::experiment::{
        order_batch, run_batch, run_batch_observed, run_batch_with_arrivals, run_experiment,
        run_replicated, BatchOrder, ExperimentConfig, ExperimentResult, ObsArtifacts,
        ReplicatedResult, RunError, RunResult,
    };
    pub use crate::figures::{
        ablation_flow_control, ablation_gang, ablation_load, ablation_memory, ablation_mpl,
        ablation_overheads, ablation_partition_tuning, ablation_pipeline, ablation_quantum,
        ablation_topology, ablation_variance,
        ablation_wormhole, fig3, fig4, fig5, fig6, figure, FigureOpts,
    };
    pub use crate::open::{
        run_open_stream, run_open_system, sweep_load, DemandSpec, LoadPoint, LoadSweep,
        OpenConfig, OpenJobRecord, OpenRunResult, StopRule, TailStats,
    };
    pub use crate::policy::{Discipline, Placement, PolicyKind, QuantumRule};
    pub use crate::report::{metrics_table, FigureRow, FigureTable};
    pub use crate::runner::run_parallel;
    pub use crate::sharded::{
        default_shards, run_batch_sharded, shard_eligibility, ShardMode, ShardedRunResult,
    };
}

pub use prelude::*;
