//! The hierarchical scheduler (§3.2 of the paper).
//!
//! The paper structures scheduling as a *super scheduler* (global FCFS job
//! queue), one *partition scheduler* per partition (admission), and *local
//! schedulers* per processor (the round-robin quanta executed by the
//! machine's CPUs). [`Driver`] implements the super and partition levels on
//! top of [`Machine`]; the policies differ only in the per-partition
//! multiprogramming limit and the quantum rule:
//!
//! * **static space-sharing** — MPL 1 per partition, default quantum;
//! * **time-sharing / hybrid** — unbounded MPL (the batch spreads
//!   equitably), RR-job quanta.

use crate::policy::{Discipline, Placement, PolicyKind, QuantumRule};
use parsched_des::{EventScheduler, Model, SimDuration, SimTime};

/// `PolicyTick` token tag for job arrivals (low bits = batch index); tokens
/// below this are gang-rotation ticks (partition indices).
const ARRIVAL_TOKEN: u64 = 1 << 32;
use parsched_machine::{Event, JobId, JobSpec, Machine, Note};
use parsched_topology::PartitionPlan;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One batch entry's lifecycle record.
#[derive(Debug, Clone)]
struct Entry {
    /// The job blueprint; kept (not consumed) so a fault-killed job can be
    /// requeued and rerun under a fresh machine job id.
    spec: JobSpec,
    job_id: Option<JobId>,
    partition: Option<usize>,
    arrival: SimTime,
    finished: Option<SimTime>,
    /// The current incarnation is executing (counted in `running`).
    started: bool,
    /// Times this entry's job was killed by a fault.
    failures: u32,
    /// Terminally given up on after exhausting the requeue budget
    /// (`finished` records the abandonment instant).
    abandoned: bool,
    /// Coordinated sharded runs: the entry sits in the *global* FCFS queue
    /// (held by the coordinator, not this driver's `pending`); its arrival
    /// only registers it, and a [`CoordGrant::Admit`] places it later.
    deferred: bool,
    /// Coordinated sharded runs: a grant re-placed this entry on another
    /// shard; the new owner reports its completion.
    released: bool,
}

/// Gang-scheduling rotation state for one partition.
#[derive(Debug, Clone, Default)]
struct GangState {
    /// Live jobs (batch indices); the front is the active one.
    rotation: VecDeque<usize>,
    /// A rotation tick is scheduled.
    tick_live: bool,
}

/// A super-scheduler decision a shard cannot take locally, surfaced to the
/// coordinated sharded runner's leader (see `core::sharded`). The shard
/// records the request, pauses its engine at the triggering instant, and
/// stays paused until the leader answers with [`CoordGrant`]s.
///
/// All partition indices here are **global** (the sequential plan's), not
/// the shard's local sub-plan indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordRequest {
    /// A completion freed a slot on `part` while the global FCFS queue was
    /// non-empty: pop the queue head and admit it here (the sequential
    /// super scheduler admits the popped job to the completing partition).
    Pop {
        /// The completion instant.
        time: SimTime,
        /// Global partition index of the completing partition.
        part: usize,
    },
    /// A fault killed `global_idx` on `from_part` (`failures` counts the
    /// kill just taken): re-place it on the globally least-loaded alive
    /// partition, exactly as the sequential requeue path would.
    Requeue {
        /// The kill instant.
        time: SimTime,
        /// Global batch index of the killed job.
        global_idx: usize,
        /// Global partition index the job died on.
        from_part: usize,
        /// Failure count including the kill just taken.
        failures: u32,
    },
}

impl CoordRequest {
    /// The simulated instant the request was raised at.
    pub fn time(&self) -> SimTime {
        match *self {
            CoordRequest::Pop { time, .. } | CoordRequest::Requeue { time, .. } => time,
        }
    }

    /// The global partition the request concerns — the cross-shard
    /// tie-break key (partitions are disjoint across shards, so
    /// `(time, part)` totally orders same-instant requests).
    pub fn part(&self) -> usize {
        match *self {
            CoordRequest::Pop { part, .. } => part,
            CoordRequest::Requeue { from_part, .. } => from_part,
        }
    }
}

/// The leader's answer to [`CoordRequest`]s, applied by the destination
/// shard before it resumes. Partition indices are global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordGrant {
    /// Admit global job `global_idx` on global partition `part` at `time`,
    /// with the loader floor the global admission chain dictates.
    /// `failures` carries the entry's failure count across a shard
    /// migration (nonzero exactly for fault requeues).
    Admit {
        /// The admission instant (the granted request's time).
        time: SimTime,
        /// Global batch index of the job to admit.
        global_idx: usize,
        /// Global partition index to admit onto (must be local here).
        part: usize,
        /// Host-link loader floor for the (re)load.
        floor: SimTime,
        /// Failure count to carry onto the (possibly migrated) entry.
        failures: u32,
    },
    /// Forget the local incarnation of `global_idx`: the leader re-placed
    /// it on another shard, whose driver now owns (and reports) it.
    Release {
        /// Global batch index of the job to forget.
        global_idx: usize,
    },
}

/// Per-driver state of the coordinated sharded protocol
/// ([`Driver::with_coordination`]).
struct CoordClient {
    /// Live broadcast: the global FCFS queue is non-empty. Completions
    /// raise [`CoordRequest::Pop`] only while set, mirroring the
    /// sequential "pop on completion" exactly (the leader clears it the
    /// instant the queue drains, before any shard resumes).
    queue_active: Arc<AtomicBool>,
    /// The full global batch, for re-materializing a job spec when a grant
    /// migrates an entry onto this shard.
    specs: Arc<Vec<JobSpec>>,
    /// Global partition id of each local partition, ascending.
    partition_ids: Vec<usize>,
    /// Global batch index → local entry index (None = not resident here).
    local_of: Vec<Option<usize>>,
    /// Requests raised since the last [`Driver::take_requests`].
    requests: Vec<CoordRequest>,
}

/// The super + partition scheduler driving one machine through one batch.
pub struct Driver {
    /// The machine under control (public for post-run statistics capture).
    pub machine: Machine,
    plan: PartitionPlan,
    policy: PolicyKind,
    rule: QuantumRule,
    placement: Placement,
    /// Maximum jobs *executing* per partition at once.
    mpl: usize,
    /// Extra job loads staged ahead per partition (classic double
    /// buffering: the next job's code/data ships while the current one
    /// runs; its processes only start when an execution slot frees).
    prefetch: usize,
    /// Time-sharing coordination discipline.
    discipline: Discipline,
    /// Per-entry arrival instants (empty = whole batch at t = 0).
    arrivals: Vec<SimTime>,
    /// Per-partition gang rotation (front = the active job's batch index).
    gang: Vec<GangState>,
    entries: Vec<Entry>,
    /// Super scheduler's FCFS queue of batch indices.
    pending: VecDeque<usize>,
    /// Batch indices assigned to each partition (loading/ready/running).
    assigned: Vec<VecDeque<usize>>,
    /// Executing job count per partition.
    running: Vec<usize>,
    /// batch index by machine JobId.
    by_job: Vec<usize>,
    /// Fault-requeue budget per entry: a job killed more than this many
    /// times is abandoned (terminal drop-and-account) instead of requeued
    /// — any finite per-message timeout below the congested delivery tail
    /// would otherwise requeue the same doomed job forever.
    max_requeues: u32,
    /// Override of the *global* batch index per entry, used by placement
    /// staggering. A sharded run hands each shard a sub-batch but must
    /// keep the placements the sequential run would compute.
    job_indices: Option<Vec<usize>>,
    /// Per-entry host-link loader floors (see `Machine::set_load_floor`);
    /// the sharded runner precomputes the global loader serialization.
    load_floors: Option<Vec<SimTime>>,
    /// Adaptive re-fork hook: given a failed entry's batch index and the
    /// survivor count of its new partition, produce the spec to rerun
    /// (`None` = rerun the original spec unchanged, the fixed architecture).
    respawner: Option<Respawner>,
    /// Jobs currently in the system (arrived, not yet departed): the
    /// open-system population behind the `machine.in_system` gauge and the
    /// `JobSubmitted`/`JobDeparted` events.
    in_system: u32,
    /// Coordinated sharded protocol client (`None` = sequential or
    /// free-running sharded execution; global decisions stay local).
    coord: Option<CoordClient>,
}

/// Boxed [`Driver::with_respawner`] hook: `(batch index, survivor count)`
/// to the replacement spec (`None` = rerun the original unchanged).
type Respawner = Box<dyn Fn(usize, usize) -> Option<JobSpec> + Send>;

/// One batch entry's lifecycle as seen from outside the driver
/// ([`Driver::entry_records`]): when it arrived, when (if) it departed, and
/// whether the departure was a terminal abandonment rather than a
/// completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRecord {
    /// The entry's arrival instant at the super scheduler.
    pub arrival: SimTime,
    /// Completion (or abandonment) instant; `None` if still in the system
    /// when the run stopped.
    pub finished: Option<SimTime>,
    /// The entry was terminally abandoned after exhausting its requeue
    /// budget.
    pub abandoned: bool,
}

impl Driver {
    /// Build a driver for `batch` (in submission order) under the given
    /// policy. The multiprogramming limit is 1 for the static policy and
    /// unbounded for time-sharing; [`Driver::with_mpl`] overrides it.
    pub fn new(
        machine: Machine,
        plan: PartitionPlan,
        policy: PolicyKind,
        rule: QuantumRule,
        placement: Placement,
        batch: Vec<JobSpec>,
    ) -> Driver {
        let mpl = match policy {
            PolicyKind::Static => 1,
            PolicyKind::TimeSharing => usize::MAX,
        };
        let count = plan.count();
        Driver {
            machine,
            plan,
            policy,
            rule,
            placement,
            mpl,
            prefetch: 1,
            discipline: Discipline::Uncoordinated,
            arrivals: Vec::new(),
            gang: (0..count).map(|_| GangState::default()).collect(),
            entries: batch
                .into_iter()
                .map(|spec| Entry {
                    spec,
                    job_id: None,
                    partition: None,
                    arrival: SimTime::ZERO,
                    finished: None,
                    started: false,
                    failures: 0,
                    abandoned: false,
                    deferred: false,
                    released: false,
                })
                .collect(),
            pending: VecDeque::new(),
            assigned: (0..count).map(|_| VecDeque::new()).collect(),
            running: vec![0; count],
            by_job: Vec::new(),
            max_requeues: 16,
            job_indices: None,
            load_floors: None,
            respawner: None,
            in_system: 0,
            coord: None,
        }
    }

    /// Override the per-partition multiprogramming limit (the hybrid
    /// policy's "set size" tuning parameter, §2.3).
    pub fn with_mpl(mut self, mpl: usize) -> Driver {
        assert!(mpl >= 1);
        self.mpl = mpl;
        self
    }

    /// Override the per-partition load-prefetch depth (0 disables
    /// double-buffered loading).
    pub fn with_prefetch(mut self, prefetch: usize) -> Driver {
        self.prefetch = prefetch;
        self
    }

    /// Select the time-sharing coordination discipline (gang scheduling or
    /// the paper's uncoordinated local round-robin).
    pub fn with_discipline(mut self, discipline: Discipline) -> Driver {
        self.discipline = discipline;
        self
    }

    /// Override the fault-requeue budget (default 16): a job killed more
    /// than this many times is abandoned — its messages stay terminally
    /// dropped and accounted, `Counters::jobs_abandoned` increments, and
    /// its response time is measured to the abandonment instant. A budget
    /// of 0 disables requeueing entirely.
    pub fn with_max_requeues(mut self, budget: u32) -> Driver {
        self.max_requeues = budget;
        self
    }

    /// Override the global batch index used for placement staggering, one
    /// per entry. A sharded run builds each shard's driver over a
    /// sub-batch; placements (and the paper's staggered/blocked layouts in
    /// particular) must still be computed from the *global* submission
    /// index to match the sequential run bit-for-bit.
    ///
    /// # Panics
    /// Panics if the length does not match the batch.
    pub fn with_job_indices(mut self, indices: Vec<usize>) -> Driver {
        assert_eq!(indices.len(), self.entries.len(), "one index per job");
        self.job_indices = Some(indices);
        self
    }

    /// Set per-entry host-link loader floors (the job's loader start in
    /// the global admission order), one per entry. See
    /// `Machine::set_load_floor`.
    ///
    /// # Panics
    /// Panics if the length does not match the batch.
    pub fn with_load_floors(mut self, floors: Vec<SimTime>) -> Driver {
        assert_eq!(floors.len(), self.entries.len(), "one floor per job");
        self.load_floors = Some(floors);
        self
    }

    /// Install an adaptive re-fork hook: when a fault-killed job is
    /// requeued, the hook receives its batch index and the survivor count
    /// of the partition it is being re-admitted to, and may return a
    /// replacement spec (e.g. the same work re-forked over fewer
    /// processes, the paper's adaptive architecture). Returning `None`
    /// reruns the original spec unchanged (the fixed architecture).
    pub fn with_respawner(
        mut self,
        f: impl Fn(usize, usize) -> Option<JobSpec> + Send + 'static,
    ) -> Driver {
        self.respawner = Some(Box::new(f));
        self
    }

    /// Run an *open* workload: entry `i` arrives at `arrivals[i]` instead of
    /// the whole batch arriving at t = 0. Response times are measured from
    /// each job's own arrival.
    ///
    /// # Panics
    /// Panics if the length does not match the batch.
    pub fn with_arrivals(mut self, arrivals: Vec<SimTime>) -> Driver {
        assert_eq!(arrivals.len(), self.entries.len(), "one arrival per job");
        self.arrivals = arrivals;
        self
    }

    /// Enroll this driver in the coordinated sharded protocol (see
    /// `core::sharded`): global super-scheduler decisions — FCFS-queue pops
    /// and fault requeues — are raised as [`CoordRequest`]s (pausing the
    /// engine) instead of being taken locally, and the leader's
    /// [`CoordGrant`]s apply them.
    ///
    /// `partition_ids` maps each local partition to its global id;
    /// `deferred` marks the local entries the coordinator holds in the
    /// global queue (their arrival only registers them). Requires
    /// [`Driver::with_job_indices`] first.
    pub fn with_coordination(
        mut self,
        queue_active: Arc<AtomicBool>,
        specs: Arc<Vec<JobSpec>>,
        partition_ids: Vec<usize>,
        deferred: Vec<bool>,
    ) -> Driver {
        assert_eq!(partition_ids.len(), self.plan.count(), "one global id per partition");
        assert_eq!(deferred.len(), self.entries.len(), "one deferral flag per entry");
        let indices = self
            .job_indices
            .as_ref()
            .expect("with_job_indices must precede with_coordination");
        let mut local_of = vec![None; specs.len()];
        for (li, &g) in indices.iter().enumerate() {
            local_of[g] = Some(li);
        }
        for (e, d) in self.entries.iter_mut().zip(deferred) {
            e.deferred = d;
        }
        self.coord = Some(CoordClient {
            queue_active,
            specs,
            partition_ids,
            local_of,
            requests: Vec::new(),
        });
        self
    }

    /// Drain the [`CoordRequest`]s raised since the last call (empty when
    /// the driver is not coordinated or ran without pausing).
    pub fn take_requests(&mut self) -> Vec<CoordRequest> {
        self.coord
            .as_mut()
            .map_or_else(Vec::new, |c| std::mem::take(&mut c.requests))
    }

    /// Snapshot `(global partition id, assigned-job count, alive)` per
    /// local partition — the leader's view for global requeue targeting.
    pub fn partition_loads(&self) -> Vec<(usize, usize, bool)> {
        (0..self.plan.count())
            .map(|p| {
                let gid = self.coord.as_ref().map_or(p, |c| c.partition_ids[p]);
                (gid, self.assigned[p].len(), self.partition_alive(p))
            })
            .collect()
    }

    /// Apply the leader's grants, seeding each admission into the shard's
    /// engine at the grant instant. Must run before the engine resumes.
    pub fn apply_grants(
        &mut self,
        grants: &[CoordGrant],
        seeder: &mut impl parsched_des::EventSeeder<Event>,
    ) {
        for &g in grants {
            match g {
                CoordGrant::Release { global_idx } => {
                    let c = self.coord.as_mut().expect("grants require coordination");
                    let li = c.local_of[global_idx]
                        .take()
                        .expect("release of an entry this shard does not hold");
                    self.entries[li].released = true;
                    // The entry's departure now happens on its new owner;
                    // hand the population count over silently (the
                    // observable submit/depart events are not duplicated).
                    self.in_system -= 1;
                }
                CoordGrant::Admit { time, global_idx, part, floor, failures } => {
                    let c = self.coord.as_ref().expect("grants require coordination");
                    let local_part = c
                        .partition_ids
                        .iter()
                        .position(|&gp| gp == part)
                        .expect("admit grant for a partition this shard does not own");
                    let li = match c.local_of[global_idx] {
                        Some(li) => li,
                        None => {
                            // Migration: materialize the entry here from the
                            // shared batch. Closed-batch arrival (t = 0) and
                            // the failure count carry over; the original
                            // owner gets a matching `Release`.
                            let c = self.coord.as_mut().expect("checked");
                            let li = self.entries.len();
                            self.entries.push(Entry {
                                spec: c.specs[global_idx].clone(),
                                job_id: None,
                                partition: None,
                                arrival: SimTime::ZERO,
                                finished: None,
                                started: false,
                                failures,
                                abandoned: false,
                                deferred: false,
                                released: false,
                            });
                            c.local_of[global_idx] = Some(li);
                            self.job_indices
                                .as_mut()
                                .expect("coordinated runs carry job indices")
                                .push(global_idx);
                            self.load_floors
                                .as_mut()
                                .expect("coordinated runs carry load floors")
                                .push(SimTime::ZERO);
                            self.in_system += 1;
                            li
                        }
                    };
                    debug_assert_eq!(self.entries[li].failures, failures);
                    self.entries[li].deferred = false;
                    self.load_floors
                        .as_mut()
                        .expect("coordinated runs carry load floors")[li] = floor;
                    let job = self.admit_body(local_part, li, time);
                    seeder.seed(time, Event::Admit { job });
                    self.retune_quantum(local_part);
                }
            }
        }
    }

    /// The policy this driver runs.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Seed every job's arrival with the engine. Call once, before
    /// `engine.run`. With no [`Driver::with_arrivals`] the whole batch
    /// arrives at t = 0 (the paper's setting); admission then spreads jobs
    /// equitably over the partitions (§5.1) because each arrival picks the
    /// least-loaded partition.
    pub fn start(&mut self, engine: &mut impl parsched_des::EventSeeder<Event>) {
        // Declared faults go in first: an empty plan seeds nothing, so
        // fault-free runs allocate the exact same event sequence as before.
        self.machine.seed_faults(engine);
        for idx in 0..self.entries.len() {
            let at = self.arrivals.get(idx).copied().unwrap_or(SimTime::ZERO);
            engine.seed(
                at,
                Event::PolicyTick {
                    token: ARRIVAL_TOKEN | idx as u64,
                },
            );
        }
    }

    /// Super scheduler: a job arrives. Assign it to the least-loaded
    /// viable partition with a free (execution or prefetch) slot, or
    /// queue it.
    fn on_arrival(&mut self, idx: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        self.entries[idx].arrival = now;
        self.in_system += 1;
        self.machine.observe(
            now,
            parsched_obs::ObsEvent::JobSubmitted {
                index: idx as u32,
                in_system: self.in_system,
            },
        );
        if let Some(m) = self.machine.metrics.as_deref_mut() {
            m.set_in_system(now, self.in_system);
        }
        if self.entries[idx].deferred {
            // Coordinated sharded run: the coordinator holds this entry in
            // the global FCFS queue; a grant admits it later.
            return;
        }
        self.admit_or_queue(idx, now, sched, false);
    }

    /// A batch entry left the system (completed or terminally abandoned):
    /// step the population gauge down and record the departure.
    fn on_departure(&mut self, idx: usize, now: SimTime) {
        self.in_system -= 1;
        self.machine.observe(
            now,
            parsched_obs::ObsEvent::JobDeparted {
                index: idx as u32,
                in_system: self.in_system,
            },
        );
        if let Some(m) = self.machine.metrics.as_deref_mut() {
            m.set_in_system(now, self.in_system);
        }
    }

    /// The surviving (alive) nodes of a partition, in index order. The
    /// full contiguous range on a fault-free run.
    fn alive_nodes(&self, part: usize) -> Vec<u32> {
        let base = self.plan.partitions[part].base;
        (base..base + self.plan.partition_size)
            .map(|n| n as u32)
            .filter(|&n| self.machine.node_alive(n))
            .collect()
    }

    /// A partition can host jobs while at least one of its nodes is alive.
    fn partition_alive(&self, part: usize) -> bool {
        let base = self.plan.partitions[part].base;
        (base..base + self.plan.partition_size).any(|n| self.machine.node_alive(n as u32))
    }

    /// Admit `idx` to the least-loaded partition that is alive and has a
    /// free (execution or prefetch) slot; otherwise leave it on the FCFS
    /// queue — at the front for a requeued failure (it keeps its turn), at
    /// the back for a fresh arrival.
    fn admit_or_queue(
        &mut self,
        idx: usize,
        now: SimTime,
        sched: &mut impl EventScheduler<Event>,
        front: bool,
    ) {
        let cap = self.mpl.saturating_add(self.prefetch);
        let target = (0..self.plan.count())
            .filter(|&part| self.assigned[part].len() < cap && self.partition_alive(part))
            .min_by_key(|&part| self.assigned[part].len());
        match target {
            Some(part) => self.admit_to(part, idx, now, sched),
            None => {
                // Coordinated shards prefill every local arrival into a
                // free slot; anything else sits deferred in the global
                // queue, so the local queue must stay empty.
                debug_assert!(
                    self.coord.is_none(),
                    "coordinated arrival missed its prefilled slot"
                );
                if front {
                    self.pending.push_front(idx);
                } else {
                    self.pending.push_back(idx);
                }
            }
        }
    }

    /// Partition scheduler: place `idx` on `part` and schedule its
    /// admission, emitting `PartitionAdmit` (plus `JobRequeued` for a
    /// fault rerun).
    fn admit_to(&mut self, part: usize, idx: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let job = self.admit_body(part, idx, now);
        sched.schedule_now(Event::Admit { job });
        self.retune_quantum(part);
    }

    /// The state mutations of an admission (shared by [`Self::admit_to`]
    /// and the coordinated grant path, which seeds the `Admit` event into
    /// the paused engine instead of scheduling it from inside a handler).
    fn admit_body(&mut self, part: usize, idx: usize, now: SimTime) -> JobId {
        self.assigned[part].push_back(idx);
        let job = self.queue_on(idx, part);
        self.machine.observe(
            now,
            parsched_obs::ObsEvent::PartitionAdmit {
                job: job.0,
                partition: part as u32,
            },
        );
        if self.entries[idx].failures > 0 {
            self.machine.counters.jobs_requeued += 1;
            self.machine.observe(
                now,
                parsched_obs::ObsEvent::JobRequeued {
                    job: job.0,
                    partition: part as u32,
                },
            );
        }
        job
    }

    /// Recompute the dynamic quantum for every job resident on `part`
    /// (no-op under any other discipline): the mean per-process *remaining*
    /// demand across the partition's jobs, floored at the discipline's
    /// `base`. Called at every membership change (admission, completion,
    /// failure), so a lone job runs essentially preemption-free while a
    /// crowded partition reverts toward short, fair slices. Changing a
    /// process's quantum never reschedules a slice already under way — the
    /// new value takes effect at its next dispatch — so this is pure state
    /// and replays bit-identically on any engine.
    fn retune_quantum(&mut self, part: usize) {
        let Discipline::DynamicQuantum { base } = self.discipline else {
            return;
        };
        let members: Vec<JobId> = self.assigned[part]
            .iter()
            .filter_map(|&i| self.entries[i].job_id)
            .collect();
        if members.is_empty() {
            return;
        }
        let mut total: u128 = 0;
        for &id in &members {
            let rem = self.machine.job_remaining(id);
            let width = self.machine.job(id).proc_keys.len().max(1) as u64;
            total += (rem.nanos() / width) as u128;
        }
        let mean = (total / members.len() as u128) as u64;
        let q = SimDuration::from_nanos(mean.max(base.nanos()));
        for id in members {
            self.machine.set_job_quantum(id, q);
        }
    }

    /// Register a batch entry with the machine on a partition; returns the
    /// machine job id (the caller schedules the `Admit`). A rerun after a
    /// fault maps onto the partition's surviving nodes only, and may be
    /// re-forked by the [`Driver::with_respawner`] hook.
    fn queue_on(&mut self, idx: usize, part: usize) -> JobId {
        let alive = self.alive_nodes(part);
        let respawned = if self.entries[idx].failures > 0 {
            self.respawner.as_ref().and_then(|f| f(idx, alive.len()))
        } else {
            None
        };
        let spec = respawned.unwrap_or_else(|| self.entries[idx].spec.clone());
        let width = spec.width();
        let quantum = match (self.policy, self.discipline) {
            (PolicyKind::Static, _) => self.machine.cfg.default_quantum,
            // Dynamic quantum: start at the floor; the retune that follows
            // this admission (same event) sets the real value.
            (PolicyKind::TimeSharing, Discipline::DynamicQuantum { base }) => base,
            (PolicyKind::TimeSharing, _) => self.rule.quantum(alive.len(), width),
        };
        let global_idx = self.job_indices.as_ref().map_or(idx, |v| v[idx]);
        let placement = self.placement.assign_nodes(&alive, width, global_idx);
        let job = self.machine.queue_job_with(spec, placement, quantum, false);
        if let Some(floors) = &self.load_floors {
            self.machine.set_load_floor(job, floors[idx]);
        }
        debug_assert_eq!(self.by_job.len(), job.idx(), "job ids must be dense");
        self.by_job.push(idx);
        self.entries[idx].job_id = Some(job);
        self.entries[idx].partition = Some(part);
        job
    }

    /// Start the first Ready job assigned to `part` if an execution slot is
    /// free.
    fn start_ready(&mut self, part: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        use parsched_machine::JobState;
        while self.running[part] < self.mpl {
            let next = self.assigned[part].iter().copied().find(|&i| {
                self.entries[i]
                    .job_id
                    .is_some_and(|id| self.machine.job(id).state == JobState::Ready)
            });
            let Some(idx) = next else {
                return;
            };
            let id = self.entries[idx].job_id.expect("checked");
            self.machine.start_job(id, now, sched);
            self.entries[idx].started = true;
            self.running[part] += 1;
            self.note_mpl(part, now);
        }
    }

    /// Sample a partition's executing-job count (its effective MPL) into
    /// the machine's metrics registry, when metrics are enabled.
    fn note_mpl(&mut self, part: usize, now: SimTime) {
        if let Some(m) = self.machine.metrics.as_deref_mut() {
            m.set_partition_mpl(part, now, self.running[part] as f64);
        }
    }

    fn on_note(&mut self, note: Note, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        match note {
            Note::JobLoaded(id) => {
                if let Discipline::Gang { slot } = self.discipline {
                    let idx = self.by_job[id.idx()];
                    let part = self.entries[idx].partition.expect("loaded unplaced job");
                    self.gang[part].rotation.push_back(idx);
                    if self.gang[part].rotation.len() > 1 {
                        // Not this job's turn yet: park it.
                        self.machine.set_job_active(id, false, now, sched);
                        if !self.gang[part].tick_live {
                            self.gang[part].tick_live = true;
                            sched.schedule(slot, Event::PolicyTick { token: part as u64 });
                        }
                    }
                }
            }
            Note::JobReady(id) => {
                let idx = self.by_job[id.idx()];
                let part = self.entries[idx].partition.expect("ready unplaced job");
                self.start_ready(part, now, sched);
            }
            Note::JobCompleted(id) => {
                let idx = self.by_job[id.idx()];
                self.entries[idx].finished = Some(now);
                self.entries[idx].started = false;
                let part = self.entries[idx].partition.expect("completed unplaced job");
                self.running[part] -= 1;
                self.note_mpl(part, now);
                self.assigned[part].retain(|&i| i != idx);
                self.drop_from_gang(part, idx, now, sched);
                self.on_departure(idx, now);
                self.retune_quantum(part);
                // Partition scheduler: begin loading the next queued job
                // into the freed assignment slot, and start any staged job
                // that is already resident. (The liveness check only bites
                // after a fault; completion targets the freed partition
                // directly, as always.) Under coordination the FCFS queue
                // lives with the leader: raise a pop request and pause —
                // the grant seeds the admission at this same instant, and
                // starting resident work first is safe because the popped
                // job cannot be Ready yet (it has not even loaded).
                if self.partition_alive(part) {
                    if let Some(c) = &mut self.coord {
                        if c.queue_active.load(Ordering::Relaxed) {
                            let gp = c.partition_ids[part];
                            c.requests.push(CoordRequest::Pop { time: now, part: gp });
                            sched.request_pause();
                        }
                    } else if let Some(next) = self.pending.pop_front() {
                        self.admit_to(part, next, now, sched);
                    }
                    self.start_ready(part, now, sched);
                }
            }
            Note::JobFailed(id) => {
                let idx = self.by_job[id.idx()];
                let part = self.entries[idx].partition.expect("failed unplaced job");
                if self.entries[idx].started {
                    self.entries[idx].started = false;
                    self.running[part] -= 1;
                    self.note_mpl(part, now);
                }
                self.entries[idx].failures += 1;
                self.entries[idx].job_id = None;
                self.entries[idx].partition = None;
                self.assigned[part].retain(|&i| i != idx);
                self.drop_from_gang(part, idx, now, sched);
                self.retune_quantum(part);
                if self.entries[idx].failures > self.max_requeues {
                    // Budget exhausted: abandon terminally. The machine
                    // already dropped and accounted the dead incarnation's
                    // messages (conservation stays green); recording a
                    // finish time keeps the batch able to complete.
                    self.entries[idx].abandoned = true;
                    self.entries[idx].finished = Some(now);
                    self.machine.counters.jobs_abandoned += 1;
                    self.on_departure(idx, now);
                } else if self.coord.is_some() {
                    // Coordinated sharded run: the re-placement target is a
                    // global least-loaded choice only the leader can make.
                    // Raise the request and pause at this instant.
                    let g = self
                        .job_indices
                        .as_ref()
                        .expect("coordinated runs carry job indices")[idx];
                    let failures = self.entries[idx].failures;
                    let c = self.coord.as_mut().expect("checked");
                    c.requests.push(CoordRequest::Requeue {
                        time: now,
                        global_idx: g,
                        from_part: c.partition_ids[part],
                        failures,
                    });
                    sched.request_pause();
                } else {
                    // Requeue at the front of the FCFS queue (the job
                    // keeps its turn) and re-place immediately if any
                    // partition can take it — its own partition's
                    // survivors when that is the least-loaded viable
                    // choice.
                    self.admit_or_queue(idx, now, sched, true);
                }
                // The failure also freed a slot on its old partition;
                // offer it to the queue and restart staged work there.
                // (Coordinated shards never hold a local queue — the
                // eligible faulty class runs an unbounded MPL, so the
                // global queue is empty too and there is nothing to pop.)
                if self.partition_alive(part) {
                    let cap = self.mpl.saturating_add(self.prefetch);
                    if self.assigned[part].len() < cap && self.coord.is_none() {
                        if let Some(next) = self.pending.pop_front() {
                            self.admit_to(part, next, now, sched);
                        }
                    }
                    self.start_ready(part, now, sched);
                }
            }
        }
    }

    /// Remove a finished or failed job from a partition's gang rotation,
    /// activating the next job if the departing one held the slot.
    fn drop_from_gang(
        &mut self,
        part: usize,
        idx: usize,
        now: SimTime,
        sched: &mut impl EventScheduler<Event>,
    ) {
        if matches!(self.discipline, Discipline::Gang { .. }) {
            let was_active = self.gang[part].rotation.front() == Some(&idx);
            self.gang[part].rotation.retain(|&i| i != idx);
            if was_active {
                if let Some(&next) = self.gang[part].rotation.front() {
                    let next_id = self.entries[next].job_id.expect("rotation holds live jobs");
                    self.machine.set_job_active(next_id, true, now, sched);
                }
            }
        }
    }

    /// True once every batch entry has completed (or been abandoned), not
    /// counting entries a coordination grant re-placed on another shard.
    pub fn all_done(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.finished.is_some() || e.released)
    }

    /// `(global batch index, response time)` for every entry this shard
    /// owns at the end of a run — coordinated runs migrate entries between
    /// shards, and the owner at completion reports. Sequential drivers
    /// (no [`Driver::with_job_indices`]) report local indices.
    ///
    /// # Panics
    /// Panics if an owned entry has not finished.
    pub fn owned_responses(&self) -> Vec<(usize, SimDuration)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.released)
            .map(|(i, e)| {
                let g = self.job_indices.as_ref().map_or(i, |v| v[i]);
                let done = e.finished.expect("owned_responses before completion");
                (g, done.since(e.arrival))
            })
            .collect()
    }

    /// Batch entries terminally abandoned after exhausting the requeue
    /// budget ([`Driver::with_max_requeues`]).
    pub fn abandoned_count(&self) -> usize {
        self.entries.iter().filter(|e| e.abandoned).count()
    }

    /// Per-entry lifecycle records in batch order. Unlike
    /// [`Driver::response_times`] this never panics: a horizon-stopped open
    /// run reports unfinished entries with `finished: None` and the caller
    /// decides what to do with the partial sample.
    pub fn entry_records(&self) -> Vec<EntryRecord> {
        self.entries
            .iter()
            .map(|e| EntryRecord {
                arrival: e.arrival,
                finished: e.finished,
                abandoned: e.abandoned,
            })
            .collect()
    }

    /// Per-job response times in batch order, measured from each job's own
    /// arrival (t = 0 for the whole batch in the paper's closed setting).
    ///
    /// # Panics
    /// Panics if the batch has not fully completed.
    pub fn response_times(&self) -> Vec<SimDuration> {
        self.entries
            .iter()
            .map(|e| {
                e.finished
                    .expect("response_times before completion")
                    .since(e.arrival)
            })
            .collect()
    }

    /// Render a stall diagnosis: which jobs have not finished and what the
    /// machine's processes are doing. Used when a run drains without
    /// completing (e.g. store-and-forward deadlock under `ReservedFifo`).
    pub fn diagnose(&self) -> String {
        use parsched_machine::PState;
        let mut out = String::new();
        let unfinished: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.finished.is_none())
            .map(|(i, _)| i)
            .collect();
        out.push_str(&format!(
            "stalled with {} unfinished of {} jobs: {:?}\n",
            unfinished.len(),
            self.entries.len(),
            unfinished
        ));
        out.push_str(&format!(
            "pending (never admitted): {:?}\n",
            self.pending.iter().collect::<Vec<_>>()
        ));
        let mut ready = 0;
        let mut running = 0;
        let mut brecv = 0;
        let mut balloc = 0;
        let mut done = 0;
        for p in self.machine.processes() {
            match p.state {
                PState::Ready => ready += 1,
                PState::Running => running += 1,
                PState::BlockedRecv(_) => brecv += 1,
                PState::BlockedAlloc => balloc += 1,
                PState::Finished => done += 1,
            }
        }
        out.push_str(&format!(
            "processes: ready={ready} running={running} blocked-recv={brecv} \
             blocked-alloc={balloc} finished={done}\n"
        ));
        let dead: Vec<usize> = (0..self.machine.node_count())
            .filter(|&n| !self.machine.node_alive(n as u32))
            .collect();
        if !dead.is_empty() {
            out.push_str(&format!("dead nodes: {dead:?}\n"));
        }
        for n in 0..self.machine.node_count() {
            let node = self.machine.node(n as u32);
            if node.mmu.queue_len() > 0 {
                out.push_str(&format!(
                    "node {n}: mmu queue {} (used {}/{})\n",
                    node.mmu.queue_len(),
                    node.mmu.used(),
                    node.mmu.capacity()
                ));
            }
        }
        if let Some(ring) = self
            .machine
            .recorder
            .as_deref()
            .and_then(|r| r.as_any().downcast_ref::<parsched_obs::RingRecorder>())
        {
            out.push_str("last recorded events:\n");
            out.push_str(&ring.dump());
        }
        out
    }
}

impl Driver {
    /// Rotate a partition's gang: park the running job, release the next.
    fn on_policy_tick(&mut self, part: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let Discipline::Gang { slot } = self.discipline else {
            return;
        };
        if self.gang[part].rotation.len() < 2 {
            // Nothing to rotate; stop ticking until a second job arrives.
            self.gang[part].tick_live = false;
            return;
        }
        let old = *self.gang[part].rotation.front().expect("len >= 2");
        self.gang[part].rotation.rotate_left(1);
        let new = *self.gang[part].rotation.front().expect("len >= 2");
        let old_id = self.entries[old].job_id.expect("rotation holds live jobs");
        let new_id = self.entries[new].job_id.expect("rotation holds live jobs");
        self.machine.set_job_active(old_id, false, now, sched);
        self.machine.set_job_active(new_id, true, now, sched);
        sched.schedule(slot, Event::PolicyTick { token: part as u64 });
    }
}

impl Model for Driver {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut impl EventScheduler<Event>) {
        if let Event::PolicyTick { token } = event {
            if token >= ARRIVAL_TOKEN {
                self.on_arrival((token - ARRIVAL_TOKEN) as usize, now, sched);
            } else {
                self.on_policy_tick(token as usize, now, sched);
            }
            return;
        }
        self.machine.handle(now, event, sched);
        for note in self.machine.drain_notes() {
            self.on_note(note, now, sched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::{Engine, QueueKind, RunOutcome};
    use parsched_machine::program::ProcSpec;
    use parsched_machine::{MachineConfig, Op, SystemNet};
    use parsched_topology::TopologyKind;

    fn job(name: &str, ms: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(SimDuration::from_millis(ms))],
                mem_bytes: 1024,
            }],
        }
    }

    fn driver_for(
        policy: PolicyKind,
        partitions: (usize, usize), // (system, partition size)
        batch: Vec<JobSpec>,
    ) -> Driver {
        let plan =
            PartitionPlan::equal(partitions.0, partitions.1, TopologyKind::Linear).unwrap();
        let cfg = MachineConfig {
            host_link_per_byte: SimDuration::ZERO,
            job_load_latency: SimDuration::from_millis(1),
            ..MachineConfig::default()
        };
        let machine = Machine::new(cfg, SystemNet::from_plan(&plan));
        Driver::new(
            machine,
            plan,
            policy,
            QuantumRule::default(),
            Placement::RoundRobin,
            batch,
        )
    }

    fn run(driver: &mut Driver) {
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        driver.start(&mut engine);
        assert_eq!(engine.run(driver), RunOutcome::Drained);
        assert!(driver.all_done(), "{}", driver.diagnose());
    }

    #[test]
    fn static_driver_completes_fcfs() {
        let batch = (0..6).map(|i| job(&format!("j{i}"), 10 + i)).collect();
        let mut d = driver_for(PolicyKind::Static, (2, 1), batch);
        run(&mut d);
        let rts = d.response_times();
        assert_eq!(rts.len(), 6);
        // Two partitions, FCFS: jobs 0/1 finish first, 4/5 last.
        assert!(rts[0] < rts[4]);
        assert!(rts[1] < rts[5]);
    }

    #[test]
    fn time_sharing_driver_admits_everything() {
        let batch = (0..5).map(|i| job(&format!("j{i}"), 20)).collect();
        let mut d = driver_for(PolicyKind::TimeSharing, (1, 1), batch);
        run(&mut d);
        let rts = d.response_times();
        // All five share one CPU: everyone finishes near 5 x 20 ms.
        let min = rts.iter().min().unwrap();
        assert!(
            *min >= SimDuration::from_millis(80),
            "shortest finished too early: {min}"
        );
    }

    #[test]
    fn mpl_override_caps_concurrency() {
        let batch = (0..4).map(|i| job(&format!("j{i}"), 20)).collect();
        let mut d = driver_for(PolicyKind::TimeSharing, (1, 1), batch).with_mpl(1);
        run(&mut d);
        let rts = d.response_times();
        // MPL 1 == FCFS: strictly increasing finish times.
        for w in rts.windows(2) {
            assert!(w[0] < w[1], "not FCFS: {rts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one arrival per job")]
    fn with_arrivals_checks_length() {
        let batch = vec![job("a", 1), job("b", 1)];
        let _ = driver_for(PolicyKind::Static, (1, 1), batch)
            .with_arrivals(vec![SimTime::ZERO]);
    }

    #[test]
    fn arrivals_admit_to_least_loaded_partition() {
        // 4 jobs arriving in sequence over 2 partitions: each partition
        // must get two.
        let batch = (0..4).map(|i| job(&format!("j{i}"), 5)).collect();
        let arrivals = (0..4)
            .map(|i| SimTime::ZERO + SimDuration::from_millis(i))
            .collect();
        let mut d =
            driver_for(PolicyKind::TimeSharing, (2, 1), batch).with_arrivals(arrivals);
        run(&mut d);
        let parts: Vec<usize> = d
            .entries
            .iter()
            .map(|e| e.partition.expect("placed"))
            .collect();
        assert_eq!(parts.iter().filter(|&&p| p == 0).count(), 2, "{parts:?}");
        assert_eq!(parts.iter().filter(|&&p| p == 1).count(), 2, "{parts:?}");
    }

    #[test]
    fn diagnose_reports_pending_jobs() {
        let batch = vec![job("a", 1), job("b", 1), job("c", 1)];
        let d = driver_for(PolicyKind::Static, (1, 1), batch);
        // Nothing started: all unfinished; pending is empty until start().
        let diag = d.diagnose();
        assert!(diag.contains("3 unfinished of 3 jobs"), "{diag}");
    }

    #[test]
    fn diagnose_dumps_installed_ring_recorder() {
        let batch = vec![job("a", 1)];
        let mut d = driver_for(PolicyKind::Static, (1, 1), batch);
        d.machine.recorder = Some(Box::new(parsched_obs::RingRecorder::with_capacity(64)));
        run(&mut d);
        let diag = d.diagnose();
        assert!(diag.contains("last recorded events:"), "{diag}");
        assert!(diag.contains("JobFinished"), "{diag}");
    }

    fn faulty_driver(
        faults: parsched_machine::FaultPlan,
        batch: Vec<JobSpec>,
    ) -> Driver {
        let plan = PartitionPlan::equal(2, 2, TopologyKind::Linear).unwrap();
        let cfg = MachineConfig {
            host_link_per_byte: SimDuration::ZERO,
            job_load_latency: SimDuration::from_millis(1),
            faults,
            ..MachineConfig::default()
        };
        let machine = Machine::new(cfg, SystemNet::from_plan(&plan));
        Driver::new(
            machine,
            plan,
            PolicyKind::TimeSharing,
            QuantumRule::default(),
            Placement::RoundRobin,
            batch,
        )
    }

    fn wide_job(ms: u64, width: usize) -> JobSpec {
        JobSpec {
            name: "wide".into(),
            ship_bytes: 0,
            procs: (0..width)
                .map(|_| ProcSpec {
                    program: vec![Op::Compute(SimDuration::from_millis(ms))],
                    mem_bytes: 1024,
                })
                .collect(),
        }
    }

    fn crash(node: u32, ms: u64) -> parsched_machine::FaultPlan {
        let mut faults = parsched_machine::FaultPlan::default();
        faults.crashes.push(parsched_machine::NodeCrash {
            node,
            at: SimTime::ZERO + SimDuration::from_millis(ms),
        });
        faults
    }

    #[test]
    fn crashed_job_requeues_on_survivors() {
        // A 2-wide job on nodes [0,1]; node 1 dies mid-run. The rerun must
        // map every rank onto the surviving node 0 and complete there.
        let mut d = faulty_driver(crash(1, 5), vec![wide_job(20, 2)]);
        run(&mut d);
        assert_eq!(d.entries[0].failures, 1);
        assert_eq!(d.machine.counters.jobs_failed, 1);
        assert_eq!(d.machine.counters.jobs_requeued, 1);
        let rerun = d.entries[0].job_id.expect("rerun placed");
        assert_eq!(d.machine.job(rerun).placement, vec![0, 0]);
        // Response time covers both incarnations, measured from the
        // original arrival.
        let rts = d.response_times();
        assert!(rts[0] >= SimDuration::from_millis(25), "rerun too fast: {}", rts[0]);
    }

    #[test]
    fn respawner_reforks_over_survivors() {
        // Adaptive architecture: on requeue the job re-forks with one
        // process per surviving node instead of its original two.
        let mut d = faulty_driver(crash(1, 5), vec![wide_job(20, 2)])
            .with_respawner(|_idx, alive| Some(wide_job(40, alive)));
        run(&mut d);
        assert_eq!(d.entries[0].failures, 1);
        let rerun = d.entries[0].job_id.expect("rerun placed");
        assert_eq!(d.machine.job(rerun).proc_keys.len(), 1);
        assert_eq!(d.machine.job(rerun).placement, vec![0]);
    }

    #[test]
    fn fault_recovery_replays_identically() {
        let mk = || {
            let mut d = faulty_driver(
                crash(1, 5),
                (0..3).map(|_| wide_job(10, 2)).collect(),
            );
            run(&mut d);
            (d.response_times(), d.machine.counters.jobs_requeued)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn too_low_msg_timeout_abandons_instead_of_livelocking() {
        // A finite msg_timeout far below the ~6 ms delivery tail times out
        // every attempt of every incarnation: the job is killed, requeued,
        // and killed again identically. Before the requeue budget this
        // looped forever; now the budget abandons the entry terminally,
        // the run drains, and message conservation still holds.
        use parsched_machine::{Rank, RetryPolicy, Tag};
        let faults = parsched_machine::FaultPlan {
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: SimDuration::from_micros(10),
                backoff_cap: SimDuration::from_micros(10),
                msg_timeout: Some(SimDuration::from_micros(100)),
            },
            ..Default::default()
        };
        let chatty = JobSpec {
            name: "chatty".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec {
                    program: vec![Op::Send { to: Rank(1), bytes: 10_000, tag: Tag(7) }],
                    mem_bytes: 1024,
                },
                ProcSpec {
                    program: vec![Op::Recv { tag: Tag(7) }],
                    mem_bytes: 1024,
                },
            ],
        };
        let mut d = faulty_driver(faults, vec![chatty]).with_max_requeues(3);
        run(&mut d);
        assert_eq!(d.abandoned_count(), 1);
        assert_eq!(d.machine.counters.jobs_abandoned, 1);
        assert_eq!(d.entries[0].failures, 4, "budget 3 = four incarnations");
        assert!(d.entries[0].abandoned);
        let c = &d.machine.counters;
        assert_eq!(c.messages_sent, c.messages_consumed + c.messages_dropped);
        assert!(c.messages_dropped > 0, "doomed sends must be accounted");
        let rts = d.response_times();
        assert_eq!(rts.len(), 1, "abandoned entries still report");
    }

    #[test]
    fn requeue_budget_zero_abandons_on_first_failure() {
        let mut d = faulty_driver(crash(1, 5), vec![wide_job(20, 2)]).with_max_requeues(0);
        run(&mut d);
        assert_eq!(d.entries[0].failures, 1);
        assert!(d.entries[0].abandoned);
        assert_eq!(d.machine.counters.jobs_requeued, 0);
        assert_eq!(d.machine.counters.jobs_abandoned, 1);
    }

    #[test]
    fn prefetch_zero_serializes_loads_behind_execution() {
        // With prefetch 0 the next job's load cannot overlap the current
        // job's run; makespan grows by one load latency per extra job.
        let mk = |prefetch: usize| {
            let batch = (0..3).map(|i| job(&format!("j{i}"), 50)).collect();
            let plan = PartitionPlan::equal(1, 1, TopologyKind::Linear).unwrap();
            let cfg = MachineConfig {
                host_link_per_byte: SimDuration::ZERO,
                job_load_latency: SimDuration::from_millis(20),
                ..MachineConfig::default()
            };
            let machine = Machine::new(cfg, SystemNet::from_plan(&plan));
            let mut d = Driver::new(
                machine,
                plan,
                PolicyKind::Static,
                QuantumRule::default(),
                Placement::RoundRobin,
                batch,
            )
            .with_prefetch(prefetch);
            let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
            d.start(&mut engine);
            assert_eq!(engine.run(&mut d), RunOutcome::Drained);
            *d.response_times().iter().max().unwrap()
        };
        let without = mk(0);
        let with = mk(1);
        // Prefetch hides two of the three 20 ms loads.
        assert!(
            without >= with + SimDuration::from_millis(30),
            "prefetch gained too little: {without} vs {with}"
        );
    }
}
