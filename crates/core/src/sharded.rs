//! Sharded conservative-parallel run execution.
//!
//! The paper's machine wires each partition as its own closed interconnect
//! (the C004 crossbar links partitions only through the host), so the
//! partitions evolve independently once the *global* super-scheduler
//! decisions — admission order, host-link load serialization, queue pops,
//! fault requeues — are accounted for. [`run_batch_sharded`] cuts the
//! partition plan into `K` contiguous shards ([`ShardPlan`]), gives each
//! shard its own [`Machine`] + [`Driver`] on its own thread, and picks one
//! of two execution modes ([`shard_eligibility`]):
//!
//! * **free** ([`ShardMode::Free`]) — uncoordinated time-sharing of a
//!   closed batch under an unbounded MPL with no faults. Every global
//!   coupling is precomputable: admission degenerates to round-robin
//!   (job `i` lands on partition `i mod P`, kept exact by
//!   [`Driver::with_job_indices`]) and the host-link serialization is a
//!   prefix sum ([`Driver::with_load_floors`]). Shards run under the
//!   conservative windowed engine ([`ShardedEngine`]) with no runtime
//!   coordination at all.
//! * **coordinated** ([`ShardMode::Coordinated`]) — static and hybrid
//!   (finite-MPL) policies, whose global FCFS queue pops on completions,
//!   and fault plans, whose requeues re-place jobs across partitions.
//!   The queue/requeue decisions cannot be precomputed, but they are rare
//!   and *pausable*: a shard that hits one pauses its engine at the exact
//!   instant ([`parsched_des::engine::EventScheduler::request_pause`]),
//!   raises a [`CoordRequest`], and a leader serves requests across shards
//!   in the sequential order — global `(time, partition)` — handing back
//!   [`CoordGrant`]s that seed the admission into the paused engine.
//!   Fault plans are split along shard boundaries
//!   ([`parsched_machine::FaultPlan::slice_for_nodes`]) so each declared
//!   fault is seeded exactly once, by its owner.
//!
//! Both modes reproduce the sequential run's observables — per-job
//! response times, makespan, machine counters, events processed — *bit
//! for bit*; the differential oracle sweeps assert exactly that. The few
//! configurations whose global order is not locally derivable (gang
//! rotation ticks, fault plans under a bounded MPL, same-instant
//! cross-shard queue pops) fall back deterministically to the sequential
//! path with the reason recorded in [`ShardedRunResult::fallback`].

use crate::driver::{CoordGrant, CoordRequest, Driver};
use crate::experiment::{ExperimentConfig, RunError};
use crate::policy::{Discipline, PolicyKind};
use parsched_des::{
    Engine, Lookahead, RunOutcome, ShardTiming, ShardedEngine, SimDuration, SimTime, Solo,
    Summary,
};
use parsched_machine::{Counters, Event, JobSpec, Machine, MachineConfig, SystemNet};
use parsched_topology::{PartitionPlan, ShardPlan};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Instant;

/// Output of one (possibly sharded) run: the observables a sequential run
/// of the same configuration and batch produces bit-identically.
#[derive(Debug, Clone)]
pub struct ShardedRunResult {
    /// Per-job response times in global submission order.
    pub response_times: Vec<SimDuration>,
    /// Summary of the response times (seconds).
    pub summary: Summary,
    /// Completion time of the whole batch (the latest shard clock).
    pub makespan: SimDuration,
    /// Machine-wide counters summed across shards.
    pub counters: Counters,
    /// Engine events processed, summed across shards.
    pub events: u64,
    /// Shards actually used (1 = the sequential path ran).
    pub shards: usize,
    /// Why the run fell back to the sequential path, when it did.
    pub fallback: Option<&'static str>,
    /// Wall-clock phase breakdown per shard (simulation work vs. barrier
    /// waits vs. cross-shard merge/coordination). Empty on the sequential
    /// path. Host timing, not simulation state: excluded from
    /// [`ShardedRunResult::fingerprint`].
    pub timings: Vec<ShardTiming>,
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ShardedRunResult {
    /// Mean response time in seconds — the paper's performance metric.
    pub fn mean_response(&self) -> f64 {
        self.summary.mean
    }

    /// FNV-1a digest of the run's observables (response times, makespan,
    /// counters, events). Two runs of the same scenario — sequential or
    /// sharded, any shard count, any thread interleaving — must digest
    /// identically; the determinism property tests compare these.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.response_times {
            h = fnv(h, &d.nanos().to_le_bytes());
        }
        h = fnv(h, &self.makespan.nanos().to_le_bytes());
        h = fnv(h, format!("{:?}", self.counters).as_bytes());
        h = fnv(h, &self.events.to_le_bytes());
        h
    }
}

/// How an eligible configuration executes when sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// No runtime coordination: every global coupling is precomputed
    /// (uncoordinated time-sharing, unbounded MPL, fault-free).
    Free,
    /// Barrier-round coordination: shards pause at global scheduler
    /// decisions (FCFS-queue pops, fault requeues) and a leader serves
    /// them in the sequential order.
    Coordinated,
}

/// Can `config` run sharded, and in which mode? `Err` names the global
/// coupling that forces the sequential path:
///
/// * gang scheduling's rotation ticks synchronize a partition's jobs on a
///   schedule the pause protocol cannot reproduce;
/// * a fault plan under a bounded MPL interleaves requeues with queue pops
///   in an order that is not locally derivable;
/// * a crash at t = 0 would have to precede the arrival admissions it must
///   follow;
/// * coordinated grants seed admissions into a paused engine, which is
///   only safe when the job's load lands strictly later
///   (`job_load_latency > 0`);
/// * a single partition cannot be cut (shards respect partition
///   granularity — one partition shares one interconnect and one queue).
///
/// Open arrivals are rejected at the entry point ([`run_batch_sharded`]
/// takes a closed batch); an arrival-time admission also depends on the
/// global load picture.
pub fn shard_eligibility(config: &ExperimentConfig) -> Result<ShardMode, &'static str> {
    if matches!(config.discipline, Discipline::Gang { .. }) {
        return Err("gang scheduling: rotation ticks couple partitions");
    }
    let faults = &config.machine.faults;
    let queued = config.policy == PolicyKind::Static || config.mpl.is_some();
    if !faults.is_empty() {
        if queued {
            return Err(
                "fault plan under a bounded MPL: requeues and queue pops interleave globally",
            );
        }
        if faults.crashes.iter().any(|c| c.at == SimTime::ZERO) {
            return Err("a crash at t = 0 would precede the arrivals it must follow");
        }
    }
    let coordinated = queued || !faults.is_empty();
    if coordinated && config.machine.job_load_latency == SimDuration::ZERO {
        return Err("zero-latency job loads: a granted admission would race same-instant starts");
    }
    match config.try_plan() {
        Err(_) => Err("unrealizable partition plan"),
        Ok(plan) if plan.count() < 2 => {
            Err("single partition: shards cannot cut below partition granularity")
        }
        Ok(_) => Ok(if coordinated {
            ShardMode::Coordinated
        } else {
            ShardMode::Free
        }),
    }
}

/// A sensible shard count for `config` on this host: one shard per
/// partition, capped by available parallelism and 8 (barrier costs grow
/// with width faster than these closed batches can amortize).
pub fn default_shards(config: &ExperimentConfig) -> usize {
    let parts = config.system_size / config.partition_size.max(1);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    parts.min(cpus).clamp(1, 8)
}

/// Classify the lookahead the shard cut admits. No cross-shard channel
/// (the paper's wiring: partitions are closed) means the shards are
/// independent; otherwise the cheapest cross-shard interaction is one
/// store-and-forward hop, bounded below by the link startup time.
fn classify_lookahead(
    net: &SystemNet,
    partition_size: usize,
    shard_plan: &ShardPlan,
    cfg: &MachineConfig,
) -> Result<Lookahead, &'static str> {
    let crossing = net.channels().iter().any(|c| {
        let a = shard_plan.shard_of(c.from as usize / partition_size);
        let b = shard_plan.shard_of(c.to as usize / partition_size);
        a != b
    });
    if !crossing {
        return Ok(Lookahead::Independent);
    }
    if cfg.link_startup.nanos() == 0 {
        return Err("zero-latency cross-shard links admit no lookahead window");
    }
    Ok(Lookahead::Finite(cfg.link_startup))
}

/// The sequential path, producing the same observable set as the sharded
/// one (mirrors `experiment::execute` without instrumentation, keeping
/// the machine counters accessible).
fn run_sequential(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    fallback: Option<&'static str>,
) -> Result<ShardedRunResult, RunError> {
    let plan = config.try_plan().map_err(|e| {
        RunError::aborted(format!("unrealizable configuration {}: {e}", config.label()))
    })?;
    let machine = Machine::new(config.machine.clone(), SystemNet::from_plan(&plan));
    let mut driver = Driver::new(
        machine,
        plan,
        config.policy,
        config.rule,
        config.placement,
        batch,
    );
    if let Some(mpl) = config.mpl {
        driver = driver.with_mpl(mpl);
    }
    driver = driver.with_discipline(config.discipline);
    let mut engine: Engine<Event> = Engine::new(config.queue);
    engine.max_events = config.machine.max_events;
    driver.start(&mut engine);
    let outcome = engine.run(&mut driver);
    if outcome != RunOutcome::Drained || !driver.all_done() {
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis: driver.diagnose(),
        });
    }
    let response_times = driver.response_times();
    let summary = Summary::of_durations(&response_times);
    Ok(ShardedRunResult {
        response_times,
        summary,
        makespan: engine.now().since(SimTime::ZERO),
        counters: driver.machine.counters.clone(),
        events: engine.events_processed(),
        shards: 1,
        fallback,
        timings: Vec::new(),
    })
}

/// Execute one closed-batch run of `config`, sharded over up to `shards`
/// threads when the configuration is eligible ([`shard_eligibility`]);
/// otherwise run sequentially and record why. The observables are
/// bit-identical either way.
pub fn run_batch_sharded(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    shards: usize,
) -> Result<ShardedRunResult, RunError> {
    if shards <= 1 {
        return run_sequential(config, batch, None);
    }
    let mode = match shard_eligibility(config) {
        Ok(mode) => mode,
        Err(reason) => return run_sequential(config, batch, Some(reason)),
    };
    let plan = config.plan();
    let shard_plan = ShardPlan::contiguous(plan.count(), shards);
    debug_assert!(
        shard_plan.shards >= 2,
        "eligibility guarantees at least two partitions"
    );
    match mode {
        ShardMode::Free => run_free(config, batch, plan, shard_plan),
        ShardMode::Coordinated => run_coordinated(config, batch, plan, shard_plan),
    }
}

/// The free mode: precomputed admission + load floors, no runtime
/// coordination, conservative windowed engine.
fn run_free(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    plan: PartitionPlan,
    shard_plan: ShardPlan,
) -> Result<ShardedRunResult, RunError> {
    let p = plan.count();
    let k = shard_plan.shards;
    let lookahead = match classify_lookahead(
        &SystemNet::from_plan(&plan),
        plan.partition_size,
        &shard_plan,
        &config.machine,
    ) {
        Ok(l) => l,
        Err(reason) => return run_sequential(config, batch, Some(reason)),
    };

    // Host-link serialization: job i's load starts once loads 0..i are
    // done (all arrive at t = 0 and admission is immediate, so the
    // sequential loader grants in submission order).
    let mut floors = Vec::with_capacity(batch.len());
    let mut at = 0u64;
    for spec in &batch {
        floors.push(SimTime(at));
        at += config.machine.load_duration(spec.effective_ship_bytes()).nanos();
    }

    // Round-robin admission: job i lands on partition i mod P, hence on
    // the shard owning that partition.
    let mut members_of: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..batch.len() {
        members_of[shard_plan.shard_of(i % p)].push(i);
    }

    let mut drivers = Vec::with_capacity(k);
    for (s, members) in members_of.iter().enumerate() {
        let sub_plan = PartitionPlan {
            system_size: plan.system_size,
            partition_size: plan.partition_size,
            partitions: shard_plan
                .partitions_of(s)
                .iter()
                .map(|&q| plan.partitions[q].clone())
                .collect(),
        };
        // Each shard simulates the full node/link array (its partitions
        // never talk to the others', so the rest sits idle); the driver
        // only schedules onto the shard's own partitions.
        let machine = Machine::new(config.machine.clone(), SystemNet::from_plan(&plan));
        let driver = Driver::new(
            machine,
            sub_plan,
            config.policy,
            config.rule,
            config.placement,
            members.iter().map(|&i| batch[i].clone()).collect(),
        )
        .with_discipline(config.discipline)
        .with_job_indices(members.clone())
        .with_load_floors(members.iter().map(|&i| floors[i]).collect());
        drivers.push(driver);
    }

    let mut sharded: ShardedEngine<Event> = ShardedEngine::new(k, config.queue, lookahead);
    for (s, driver) in drivers.iter_mut().enumerate() {
        let engine = sharded.shard_mut(s);
        engine.max_events = config.machine.max_events;
        driver.start(engine);
    }
    let mut models: Vec<Solo<Driver>> = drivers.into_iter().map(Solo).collect();
    let outcome = sharded.run(&mut models);
    if outcome != RunOutcome::Drained || models.iter().any(|m| !m.0.all_done()) {
        let mut diagnosis = String::new();
        for (s, m) in models.iter().enumerate() {
            if !m.0.all_done() {
                diagnosis.push_str(&format!("shard {s}:\n{}\n", m.0.diagnose()));
            }
        }
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis,
        });
    }

    let mut response_times = vec![SimDuration::ZERO; batch.len()];
    let mut counters = Counters::default();
    for (s, m) in models.iter().enumerate() {
        let local = m.0.response_times();
        for (j, &i) in members_of[s].iter().enumerate() {
            response_times[i] = local[j];
        }
        counters.absorb(&m.0.machine.counters);
    }
    let summary = Summary::of_durations(&response_times);
    Ok(ShardedRunResult {
        response_times,
        summary,
        makespan: sharded.now().since(SimTime::ZERO),
        counters,
        events: sharded.events_processed(),
        shards: k,
        fallback: None,
        timings: sharded.timings().to_vec(),
    })
}

/// What one shard publishes to the leader at the end of each round.
#[derive(Debug, Clone, Default)]
struct Report {
    /// The shard's engine clock after its run slice.
    now: SimTime,
    /// Pending-event set is empty.
    drained: bool,
    /// Every owned entry finished (or was released to another shard).
    done: bool,
    /// The shard's engine hit its event budget.
    budget_hit: bool,
    /// `(global partition id, assigned-job count, alive)` per partition.
    loads: Vec<(usize, usize, bool)>,
}

/// Leader-owned coordination state, shared under one mutex.
struct Ctrl {
    /// Current run horizon: the next wakeup instant (shards pause there so
    /// requeue grants always target clocks at the same instant), `MAX`
    /// once exhausted — and from the start, for fault-free queued runs.
    horizon: SimTime,
    /// Per-shard requests raised and not yet served. All requests of one
    /// shard share one instant (the shard pauses at its first decision).
    outstanding: Vec<Vec<CoordRequest>>,
    /// The global FCFS queue: batch indices not admitted at t = 0.
    pending: VecDeque<usize>,
    /// End of the host-link load chain granted so far (nanoseconds) — the
    /// sequential machine's `loader_free_at`, mirrored.
    loader_clock: u64,
    /// Sorted, deduplicated declared crash instants.
    crash_times: Vec<SimTime>,
    /// Future wakeup instants the horizon walks through: declared crashes
    /// plus crash-exposed load completions (a job shipped onto a partition
    /// whose node dies mid-load fails at the *completion* instant, not the
    /// crash instant — `finish_load` checks the dead flags then).
    wakeups: std::collections::BTreeSet<SimTime>,
    /// Crash-exposed load-completion instants ever scheduled (kept after
    /// the horizon passes them): a cross-shard tie at one of these is not
    /// orderable by the crash sort, even when it collides with a declared
    /// crash instant.
    exposed: std::collections::BTreeSet<SimTime>,
    /// Earliest declared crash instant per global partition (`MAX` where
    /// none): a load completing at or after this on that partition fails
    /// there and then.
    min_crash: Vec<SimTime>,
    /// Leader decided the run is over (all done or aborting).
    finished: bool,
    /// Deterministic bail-out to the sequential path, with the reason.
    abort: Option<&'static str>,
    /// Consecutive rounds without requests served, a horizon advance, or
    /// termination — a protocol-bug backstop.
    stall: u32,
}

/// Lock, riding through poisoning: a panicked peer already routed its
/// payload through the panic box, and the leader aborts the run.
fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One leader pass between the barriers: ingest reports, serve the
/// globally-first batch of requests, advance the crash horizon, decide
/// termination.
#[allow(clippy::too_many_arguments)]
fn leader_round(
    ctrl: &Mutex<Ctrl>,
    reports: &[Mutex<Report>],
    grants: &[Mutex<Vec<CoordGrant>>],
    queue_active: &AtomicBool,
    specs: &[JobSpec],
    config: &ExperimentConfig,
    shard_plan: &ShardPlan,
    partitions: usize,
) {
    let mut c = lk(ctrl);
    if c.abort.is_some() {
        c.finished = true;
        return;
    }
    let reps: Vec<Report> = reports.iter().map(|m| lk(m).clone()).collect();
    if reps.iter().any(|r| r.budget_hit) {
        c.abort = Some("a shard exhausted its event budget");
        c.finished = true;
        return;
    }
    let k = reps.len();
    let mut progressed = false;

    // Serve the globally-first shard batch: the shard whose first
    // outstanding request has the least (time, partition) key. Contiguous
    // shard cuts make partition order and shard order agree, so serving
    // one whole same-instant batch per round reproduces the sequential
    // global order.
    let s_star = (0..k)
        .filter(|&s| !c.outstanding[s].is_empty())
        .min_by_key(|&s| {
            let r = &c.outstanding[s][0];
            (r.time(), r.part())
        });
    if let Some(s) = s_star {
        let t_star = c.outstanding[s][0].time();
        // A same-instant decision on another shard is only orderable when
        // both are crash-driven requeues: `seed_faults` sorts crashes by
        // (time, node), so the sequential order is partition order, which
        // the (time, part) key serves exactly. Anything else (a queue-pop
        // tie, or a dynamic-time failure coinciding) has a sequential
        // order determined by event seq history no shard can see.
        let tied = (0..k)
            .any(|o| o != s && c.outstanding[o].first().is_some_and(|r| r.time() == t_star));
        if tied {
            let crash_instant =
                c.crash_times.binary_search(&t_star).is_ok() && !c.exposed.contains(&t_star);
            let all_requeues = (0..k).all(|o| {
                c.outstanding[o]
                    .iter()
                    .all(|r| r.time() != t_star || matches!(r, CoordRequest::Requeue { .. }))
            });
            if !(crash_instant && all_requeues) {
                c.abort =
                    Some("same-instant cross-shard scheduler decisions have no derivable order");
                c.finished = true;
                return;
            }
        }
        let batch = std::mem::take(&mut c.outstanding[s]);
        debug_assert!(batch.iter().all(|r| r.time() == t_star));
        // Global load lens for requeue targeting: every shard's published
        // per-partition view, plus the grants issued within this batch.
        let mut view = vec![(0usize, false); partitions];
        for r in &reps {
            for &(gid, len, alive) in &r.loads {
                view[gid] = (len, alive);
            }
        }
        for req in batch {
            match req {
                CoordRequest::Pop { time, part } => {
                    let Some(g) = c.pending.pop_front() else {
                        // The queue drained since the shard paused: the
                        // sequential completion would find it empty too.
                        continue;
                    };
                    let floor = SimTime(time.nanos().max(c.loader_clock));
                    c.loader_clock = floor.nanos()
                        + config
                            .machine
                            .load_duration(specs[g].effective_ship_bytes())
                            .nanos();
                    lk(&grants[s]).push(CoordGrant::Admit {
                        time,
                        global_idx: g,
                        part,
                        floor,
                        failures: 0,
                    });
                    view[part].0 += 1;
                    // Deferred entries are registered on shard 0; an
                    // admission elsewhere migrates them.
                    if s != 0 {
                        lk(&grants[0]).push(CoordGrant::Release { global_idx: g });
                    }
                    if c.pending.is_empty() {
                        // No shard may raise (or hold) a pop once the
                        // queue is dry: clear stale ones as no-ops before
                        // anyone resumes.
                        queue_active.store(false, Ordering::Relaxed);
                        for o in 0..k {
                            c.outstanding[o].retain(|r| !matches!(r, CoordRequest::Pop { .. }));
                        }
                    }
                }
                CoordRequest::Requeue {
                    time,
                    global_idx,
                    from_part: _,
                    failures,
                } => {
                    // The grant seeds an admission at `time` and reads the
                    // load lens as of `time`: both are invalid once any
                    // other shard's clock passed it (dynamic-time failures
                    // between crash horizons land here — deterministically,
                    // so the sequential rerun is bit-faithful).
                    if (0..k).any(|o| o != s && reps[o].now > time) {
                        c.abort = Some("a requeue instant already passed on another shard");
                        c.finished = true;
                        return;
                    }
                    // Sequential re-placement: least-loaded alive
                    // partition, ties to the lowest index.
                    let target = (0..partitions)
                        .filter(|&q| view[q].1)
                        .min_by_key(|&q| view[q].0);
                    let Some(q) = target else {
                        c.abort = Some("no alive partition can take a requeued job");
                        c.finished = true;
                        return;
                    };
                    view[q].0 += 1;
                    let floor = SimTime(time.nanos().max(c.loader_clock));
                    c.loader_clock = floor.nanos()
                        + config
                            .machine
                            .load_duration(specs[global_idx].effective_ship_bytes())
                            .nanos();
                    // A grant onto a partition with a pending crash fails
                    // again at load completion — an instant no declared
                    // horizon covers. Schedule it as a wakeup so every
                    // shard pauses there; if a shard's clock already
                    // passed it, the requeue it will raise is unservable.
                    let completion = SimTime(c.loader_clock);
                    if c.min_crash[q] <= completion {
                        if reps.iter().any(|r| r.now > completion) {
                            c.abort = Some(
                                "a crash-exposed load grant lands in another shard's past",
                            );
                            c.finished = true;
                            return;
                        }
                        c.exposed.insert(completion);
                        c.wakeups.insert(completion);
                        if completion < c.horizon {
                            c.horizon = completion;
                        }
                    }
                    let owner = shard_plan.shard_of(q);
                    lk(&grants[owner]).push(CoordGrant::Admit {
                        time,
                        global_idx,
                        part: q,
                        floor,
                        failures,
                    });
                    if owner != s {
                        lk(&grants[s]).push(CoordGrant::Release { global_idx });
                    }
                }
            }
        }
        progressed = true;
    } else {
        // Nothing outstanding: every shard ran to the horizon (or
        // drained). Advance past the current wakeup instant, or finish.
        while c.wakeups.first().is_some_and(|&t| t <= c.horizon) {
            c.wakeups.pop_first();
        }
        let next = c.wakeups.first().copied().unwrap_or(SimTime::MAX);
        if next != c.horizon {
            c.horizon = next;
            progressed = true;
        }
        if reps.iter().all(|r| r.done && r.drained) {
            c.finished = true;
            return;
        }
    }

    if progressed {
        c.stall = 0;
    } else {
        c.stall += 1;
        if c.stall >= 3 {
            c.abort = Some("coordination made no progress");
            c.finished = true;
        }
    }
}

/// The coordinated mode: shards pause at global scheduler decisions and a
/// barrier-round leader serves them in the sequential global order.
fn run_coordinated(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    plan: PartitionPlan,
    shard_plan: ShardPlan,
) -> Result<ShardedRunResult, RunError> {
    let p = plan.count();
    let k = shard_plan.shards;
    let n = batch.len();

    // The sequential t = 0 admission fills every partition up to its
    // execution + prefetch capacity round-robin (job i → partition
    // i mod P) and queues the rest FCFS. The prefilled prefix is
    // precomputable exactly like the free mode; the leftovers defer to
    // the leader's queue.
    let mpl = config.mpl.unwrap_or(match config.policy {
        PolicyKind::Static => 1,
        PolicyKind::TimeSharing => usize::MAX,
    });
    // Driver's default prefetch depth is 1 (double buffering).
    let cap = mpl.saturating_add(1);
    let prefill = n.min(p.saturating_mul(cap));

    // Earliest declared crash per partition: a load completing at or after
    // it on that partition is wasted — the job fails at the completion
    // instant, which must therefore be a coordination wakeup.
    let mut min_crash = vec![SimTime::MAX; p];
    for cr in &config.machine.faults.crashes {
        for (q, part) in plan.partitions.iter().enumerate() {
            if part.contains(cr.node as usize) {
                min_crash[q] = min_crash[q].min(cr.at);
            }
        }
    }

    // Host-link serialization of the prefilled loads; the leader's clock
    // picks up where the prefix chain ends and floors every granted
    // admission after it.
    let mut floors = Vec::with_capacity(prefill);
    let mut exposed = std::collections::BTreeSet::new();
    let mut at = 0u64;
    for (i, spec) in batch[..prefill].iter().enumerate() {
        floors.push(SimTime(at));
        at += config.machine.load_duration(spec.effective_ship_bytes()).nanos();
        if min_crash[i % p] <= SimTime(at) {
            exposed.insert(SimTime(at));
        }
    }

    // Prefilled jobs live with the shard owning their partition; deferred
    // jobs register their arrival on shard 0 and migrate on admission.
    let mut members_of: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..prefill {
        members_of[shard_plan.shard_of(i % p)].push(i);
    }
    members_of[0].extend(prefill..n);

    let specs: Arc<Vec<JobSpec>> = Arc::new(batch.clone());
    let queue_active = Arc::new(AtomicBool::new(prefill < n));

    let mut drivers = Vec::with_capacity(k);
    let mut engines: Vec<Engine<Event>> = Vec::with_capacity(k);
    for (s, members) in members_of.iter().enumerate() {
        let sub_plan = PartitionPlan {
            system_size: plan.system_size,
            partition_size: plan.partition_size,
            partitions: shard_plan
                .partitions_of(s)
                .iter()
                .map(|&q| plan.partitions[q].clone())
                .collect(),
        };
        // Full node/link array per shard (idle outside its partitions),
        // but only the shard-owned slice of the fault plan: each declared
        // crash and link window is seeded exactly once, by its owner.
        let mut mc = config.machine.clone();
        mc.faults = config
            .machine
            .faults
            .slice_for_nodes(|node| shard_plan.owns_node(s, node, plan.partition_size));
        let machine = Machine::new(mc, SystemNet::from_plan(&plan));
        let mut driver = Driver::new(
            machine,
            sub_plan,
            config.policy,
            config.rule,
            config.placement,
            members.iter().map(|&i| batch[i].clone()).collect(),
        );
        if let Some(m) = config.mpl {
            driver = driver.with_mpl(m);
        }
        let deferred: Vec<bool> = members.iter().map(|&i| i >= prefill).collect();
        let driver = driver
            .with_discipline(config.discipline)
            .with_job_indices(members.clone())
            .with_load_floors(
                members
                    .iter()
                    .map(|&i| floors.get(i).copied().unwrap_or(SimTime::ZERO))
                    .collect(),
            )
            .with_coordination(
                queue_active.clone(),
                specs.clone(),
                shard_plan.partitions_of(s),
                deferred,
            );
        drivers.push(driver);
        let mut engine: Engine<Event> = Engine::new(config.queue);
        engine.max_events = config.machine.max_events;
        engines.push(engine);
    }
    for (driver, engine) in drivers.iter_mut().zip(engines.iter_mut()) {
        driver.start(engine);
    }

    let mut crash_times: Vec<SimTime> =
        config.machine.faults.crashes.iter().map(|c| c.at).collect();
    crash_times.sort_unstable();
    crash_times.dedup();
    let wakeups: std::collections::BTreeSet<SimTime> =
        crash_times.iter().copied().chain(exposed.iter().copied()).collect();
    let ctrl = Mutex::new(Ctrl {
        horizon: wakeups.first().copied().unwrap_or(SimTime::MAX),
        outstanding: vec![Vec::new(); k],
        pending: (prefill..n).collect(),
        loader_clock: at,
        crash_times,
        wakeups,
        exposed,
        min_crash,
        finished: false,
        abort: None,
        stall: 0,
    });
    let reports: Vec<Mutex<Report>> = (0..k).map(|_| Mutex::new(Report::default())).collect();
    let grants: Vec<Mutex<Vec<CoordGrant>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(k);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let shard_results: Vec<(Driver, Engine<Event>, ShardTiming)> = std::thread::scope(|scope| {
        let handles: Vec<_> = drivers
            .into_iter()
            .zip(engines)
            .enumerate()
            .map(|(s, (mut driver, mut engine))| {
                let (ctrl, reports, grants, barrier, panic_box) =
                    (&ctrl, &reports, &grants, &barrier, &panic_box);
                let (queue_active, specs, shard_plan) = (&queue_active, &specs, &shard_plan);
                scope.spawn(move || {
                    let mut timing = ShardTiming::default();
                    loop {
                        let t_work = Instant::now();
                        let round = catch_unwind(AssertUnwindSafe(|| {
                            let (my_grants, may_run, horizon) = {
                                let c = lk(ctrl);
                                (
                                    std::mem::take(&mut *lk(&grants[s])),
                                    c.outstanding[s].is_empty(),
                                    c.horizon,
                                )
                            };
                            driver.apply_grants(&my_grants, &mut engine);
                            let outcome = if may_run {
                                Some(engine.run_until(&mut driver, horizon))
                            } else {
                                None
                            };
                            let requests = driver.take_requests();
                            if !requests.is_empty() {
                                lk(ctrl).outstanding[s].extend(requests);
                            }
                            *lk(&reports[s]) = Report {
                                now: engine.now(),
                                drained: engine.pending() == 0,
                                done: driver.all_done(),
                                budget_hit: outcome == Some(RunOutcome::BudgetExhausted),
                                loads: driver.partition_loads(),
                            };
                        }));
                        if let Err(payload) = round {
                            lk(panic_box).get_or_insert(payload);
                            let mut c = lk(ctrl);
                            c.abort.get_or_insert("a shard thread panicked");
                            c.finished = true;
                        }
                        timing.work_ns += t_work.elapsed().as_nanos() as u64;
                        let t_bar = Instant::now();
                        barrier.wait();
                        timing.barrier_ns += t_bar.elapsed().as_nanos() as u64;
                        if s == 0 {
                            let t_merge = Instant::now();
                            let led = catch_unwind(AssertUnwindSafe(|| {
                                leader_round(
                                    ctrl,
                                    reports,
                                    grants,
                                    queue_active,
                                    specs,
                                    config,
                                    shard_plan,
                                    p,
                                );
                            }));
                            if let Err(payload) = led {
                                lk(panic_box).get_or_insert(payload);
                                let mut c = lk(ctrl);
                                c.abort.get_or_insert("the coordination leader panicked");
                                c.finished = true;
                            }
                            timing.merge_ns += t_merge.elapsed().as_nanos() as u64;
                        }
                        let t_bar = Instant::now();
                        barrier.wait();
                        timing.barrier_ns += t_bar.elapsed().as_nanos() as u64;
                        if lk(ctrl).finished {
                            break;
                        }
                    }
                    (driver, engine, timing)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard panics are routed through the panic box"))
            .collect()
    });

    if let Some(payload) = lk(&panic_box).take() {
        resume_unwind(payload);
    }
    if let Some(reason) = lk(&ctrl).abort {
        return run_sequential(config, batch, Some(reason));
    }

    let mut response_times = vec![SimDuration::ZERO; n];
    let mut seen = vec![false; n];
    let mut counters = Counters::default();
    let mut events = 0u64;
    let mut makespan = SimTime::ZERO;
    let mut timings = Vec::with_capacity(k);
    for (driver, engine, timing) in shard_results {
        for (g, d) in driver.owned_responses() {
            debug_assert!(!seen[g], "two shards report the same job");
            seen[g] = true;
            response_times[g] = d;
        }
        counters.absorb(&driver.machine.counters);
        events += engine.events_processed();
        makespan = makespan.max(engine.now());
        timings.push(timing);
    }
    debug_assert!(seen.iter().all(|&done| done), "every job reported exactly once");
    let summary = Summary::of_durations(&response_times);
    Ok(ShardedRunResult {
        response_times,
        summary,
        makespan: makespan.since(SimTime::ZERO),
        counters,
        events,
        shards: k,
        fallback: None,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_machine::{FaultPlan, LinkWindow, NodeCrash, Op, ProcSpec, Rank, Tag};
    use parsched_topology::TopologyKind;

    /// 16 nodes in 4-node hypercube partitions under uncoordinated
    /// time-sharing: the free sharding shape.
    fn eligible_config() -> ExperimentConfig {
        ExperimentConfig::paper(
            4,
            TopologyKind::Hypercube { dim: 0 },
            PolicyKind::TimeSharing,
        )
    }

    /// Jobs of two chatty processes: compute, exchange a message pair,
    /// compute again. Exercises the in-partition network and the host-link
    /// loader (distinct footprints => distinct load durations).
    fn chatty_batch(count: usize) -> Vec<JobSpec> {
        (0..count)
            .map(|i| {
                let ms = 2 + i as u64;
                JobSpec {
                    name: format!("chat{i}"),
                    ship_bytes: 0,
                    procs: vec![
                        ProcSpec {
                            program: vec![
                                Op::Compute(SimDuration::from_millis(ms)),
                                Op::Send {
                                    to: Rank(1),
                                    bytes: 5_000 + 1_000 * i as u64,
                                    tag: Tag(1),
                                },
                                Op::Recv { tag: Tag(2) },
                                Op::Compute(SimDuration::from_millis(1)),
                            ],
                            mem_bytes: 50_000 + 10_000 * i as u64,
                        },
                        ProcSpec {
                            program: vec![
                                Op::Recv { tag: Tag(1) },
                                Op::Send {
                                    to: Rank(0),
                                    bytes: 3_000,
                                    tag: Tag(2),
                                },
                                Op::Compute(SimDuration::from_millis(ms / 2 + 1)),
                            ],
                            mem_bytes: 40_000,
                        },
                    ],
                }
            })
            .collect()
    }

    /// Assert `config` over `batch` is bit-identical between the
    /// sequential path and every shard count in `ks`, and return the
    /// sequential result for further checks.
    fn assert_bit_identical(
        config: &ExperimentConfig,
        batch: &[JobSpec],
        ks: &[usize],
    ) -> ShardedRunResult {
        let seq = run_batch_sharded(config, batch.to_vec(), 1).unwrap();
        assert_eq!(seq.shards, 1);
        let parts = config.system_size / config.partition_size;
        for &k in ks {
            let par = run_batch_sharded(config, batch.to_vec(), k).unwrap();
            assert_eq!(par.fallback, None, "k={k}");
            assert_eq!(par.shards, k.min(parts), "k={k}");
            assert_eq!(par.response_times, seq.response_times, "k={k}");
            assert_eq!(par.makespan, seq.makespan, "k={k}");
            assert_eq!(par.counters, seq.counters, "k={k}");
            assert_eq!(par.events, seq.events, "k={k}");
            assert_eq!(par.fingerprint(), seq.fingerprint(), "k={k}");
            assert_eq!(par.timings.len(), par.shards, "k={k}");
        }
        seq
    }

    #[test]
    fn eligibility_gate_names_each_coupling() {
        assert_eq!(shard_eligibility(&eligible_config()), Ok(ShardMode::Free));

        // The widened gate: queued policies and fault plans coordinate.
        let mut c = eligible_config();
        c.policy = PolicyKind::Static;
        assert_eq!(shard_eligibility(&c), Ok(ShardMode::Coordinated));

        let mut c = eligible_config();
        c.mpl = Some(2);
        assert_eq!(shard_eligibility(&c), Ok(ShardMode::Coordinated));

        let mut c = eligible_config();
        c.machine.faults = FaultPlan {
            crashes: vec![NodeCrash {
                node: 1,
                at: SimTime(5),
            }],
            ..FaultPlan::default()
        };
        assert_eq!(shard_eligibility(&c), Ok(ShardMode::Coordinated));

        // Still sequential, each with its reason on record.
        let mut c = eligible_config();
        c.discipline = Discipline::Gang {
            slot: SimDuration::from_millis(4),
        };
        assert!(shard_eligibility(&c).unwrap_err().contains("gang"));

        let mut c = eligible_config();
        c.policy = PolicyKind::Static;
        c.machine.faults = FaultPlan {
            crashes: vec![NodeCrash {
                node: 1,
                at: SimTime(5),
            }],
            ..FaultPlan::default()
        };
        assert!(shard_eligibility(&c).unwrap_err().contains("fault plan"));

        let mut c = eligible_config();
        c.machine.faults = FaultPlan {
            crashes: vec![NodeCrash {
                node: 1,
                at: SimTime::ZERO,
            }],
            ..FaultPlan::default()
        };
        assert!(shard_eligibility(&c).unwrap_err().contains("t = 0"));

        let mut c = eligible_config();
        c.policy = PolicyKind::Static;
        c.machine.job_load_latency = SimDuration::ZERO;
        assert!(shard_eligibility(&c)
            .unwrap_err()
            .contains("zero-latency job loads"));

        let c = ExperimentConfig::paper(16, TopologyKind::Linear, PolicyKind::TimeSharing);
        assert!(shard_eligibility(&c).unwrap_err().contains("single partition"));
    }

    #[test]
    fn sharded_observables_match_sequential_bit_for_bit() {
        assert_bit_identical(&eligible_config(), &chatty_batch(9), &[2, 3, 4, 8]);
    }

    #[test]
    fn static_policy_shards_bit_identically() {
        // 4 partitions, cap 2 (MPL 1 + prefetch 1): 8 prefilled, 4 queued
        // — every pop round-trips through the leader.
        let mut config = eligible_config();
        config.policy = PolicyKind::Static;
        let seq = assert_bit_identical(&config, &chatty_batch(12), &[2, 4, 8]);
        assert!(seq.makespan > SimDuration::ZERO);
    }

    #[test]
    fn mpl_capped_time_sharing_shards_bit_identically() {
        // Hybrid shape: time-sharing under a finite MPL. Cap 3 per
        // partition => 12 prefilled, 2 queued.
        let mut config = eligible_config();
        config.mpl = Some(2);
        assert_bit_identical(&config, &chatty_batch(14), &[2, 4, 8]);
    }

    #[test]
    fn crash_fault_plan_shards_bit_identically() {
        // Crashes land mid-run on two different shards' partitions; the
        // killed jobs requeue through the leader onto the globally
        // least-loaded partition.
        let mut config = eligible_config();
        config.machine.faults = FaultPlan {
            crashes: vec![
                NodeCrash {
                    node: 1,
                    at: SimTime(120_000_000),
                },
                NodeCrash {
                    node: 13,
                    at: SimTime(200_000_000),
                },
            ],
            ..FaultPlan::default()
        };
        let seq = assert_bit_identical(&config, &chatty_batch(9), &[2, 3, 4]);
        assert!(
            seq.counters.jobs_requeued > 0,
            "the crashes must actually kill and requeue work"
        );
    }

    #[test]
    fn flaky_link_fault_plan_shards_bit_identically() {
        // A link outage window plus probabilistic corruption: retries and
        // retransmissions stay shard-local (per-channel drop streams), so
        // the run coordinates only if a job actually dies.
        let mut config = eligible_config();
        config.machine.faults = FaultPlan {
            links: vec![LinkWindow {
                from: 0,
                to: 1,
                down_at: SimTime(60_000_000),
                up_at: SimTime(90_000_000),
            }],
            drop_prob: 0.05,
            drop_seed: 11,
            ..FaultPlan::default()
        };
        let seq = assert_bit_identical(&config, &chatty_batch(8), &[2, 4]);
        assert_eq!(seq.counters.jobs_requeued, 0, "nobody should die here");
    }

    #[test]
    fn sharded_matches_run_batch_front_door() {
        let config = eligible_config();
        let batch = chatty_batch(6);
        let front = crate::experiment::run_batch(&config, batch.clone()).unwrap();
        let par = run_batch_sharded(&config, batch, 4).unwrap();
        assert_eq!(par.response_times, front.response_times);
        assert_eq!(par.makespan, front.makespan);
        assert_eq!(par.events, front.events);
    }

    #[test]
    fn ineligible_config_falls_back_with_reason() {
        let mut config = eligible_config();
        config.discipline = Discipline::Gang {
            slot: SimDuration::from_millis(4),
        };
        let batch = chatty_batch(4);
        let r = run_batch_sharded(&config, batch.clone(), 4).unwrap();
        assert_eq!(r.shards, 1);
        assert!(r.fallback.unwrap().contains("gang"));
        let seq = run_batch_sharded(&config, batch, 1).unwrap();
        assert_eq!(r.response_times, seq.response_times);
    }

    #[test]
    fn repeated_sharded_runs_are_interleaving_deterministic() {
        let config = eligible_config();
        let batch = chatty_batch(7);
        let first = run_batch_sharded(&config, batch.clone(), 4).unwrap();
        for _ in 0..3 {
            let again = run_batch_sharded(&config, batch.clone(), 4).unwrap();
            assert_eq!(again.fingerprint(), first.fingerprint());
            assert_eq!(again.response_times, first.response_times);
        }
        // The coordinated path must be just as interleaving-proof.
        let mut config = eligible_config();
        config.policy = PolicyKind::Static;
        let first = run_batch_sharded(&config, batch.clone(), 4).unwrap();
        for _ in 0..3 {
            let again = run_batch_sharded(&config, batch.clone(), 4).unwrap();
            assert_eq!(again.fingerprint(), first.fingerprint());
        }
    }

    #[test]
    fn default_shards_respects_partitions_and_caps() {
        let c = eligible_config(); // 4 partitions
        assert!(default_shards(&c) >= 1);
        assert!(default_shards(&c) <= 4);
        let c = ExperimentConfig::paper(1, TopologyKind::Linear, PolicyKind::TimeSharing);
        assert!(default_shards(&c) <= 8, "16 partitions cap at 8");
    }
}
