//! Sharded conservative-parallel run execution.
//!
//! The paper's machine wires each partition as its own closed interconnect
//! (the C004 crossbar links partitions only through the host), so under
//! uncoordinated time-sharing of a closed batch the partitions evolve
//! independently once admission is settled. [`run_batch_sharded`] exploits
//! that: it cuts the partition plan into `K` contiguous shards
//! ([`ShardPlan`]), gives each shard its own [`Machine`] + [`Driver`] on
//! its own thread, and drives them with the conservative windowed engine
//! ([`ShardedEngine`]). Admission and host-link load serialization — the
//! only *global* couplings under the eligible policies — are precomputed:
//!
//! * **admission** — with the whole batch arriving at t = 0 under an
//!   unbounded MPL, the super scheduler's least-loaded rule degenerates to
//!   round-robin, so job `i` lands on partition `i mod P` and each shard
//!   receives exactly the sub-batch of its partitions, with
//!   [`Driver::with_job_indices`] preserving the global placement indices;
//! * **loading** — jobs ship through the single host link in admission
//!   order; [`Driver::with_load_floors`] pins each job's loader start to
//!   the instant the sequential run would grant it.
//!
//! Everything else is shard-local, so a `K`-shard run reproduces the
//! sequential run's observables — per-job response times, makespan,
//! machine counters, events processed — *bit for bit*; the differential
//! oracle sweeps assert exactly that. Configurations outside the eligible
//! set (static policy, gang scheduling, MPL overrides, fault plans, open
//! arrivals, single-partition machines) fall back to the sequential path
//! with the reason recorded in [`ShardedRunResult::fallback`].

use crate::driver::Driver;
use crate::experiment::{ExperimentConfig, RunError};
use crate::policy::{Discipline, PolicyKind};
use parsched_des::{
    Engine, Lookahead, RunOutcome, ShardedEngine, SimDuration, SimTime, Solo, Summary,
};
use parsched_machine::{Counters, Event, JobSpec, Machine, MachineConfig, SystemNet};
use parsched_topology::{PartitionPlan, ShardPlan};

/// Output of one (possibly sharded) run: the observables a sequential run
/// of the same configuration and batch produces bit-identically.
#[derive(Debug, Clone)]
pub struct ShardedRunResult {
    /// Per-job response times in global submission order.
    pub response_times: Vec<SimDuration>,
    /// Summary of the response times (seconds).
    pub summary: Summary,
    /// Completion time of the whole batch (the latest shard clock).
    pub makespan: SimDuration,
    /// Machine-wide counters summed across shards.
    pub counters: Counters,
    /// Engine events processed, summed across shards.
    pub events: u64,
    /// Shards actually used (1 = the sequential path ran).
    pub shards: usize,
    /// Why the run fell back to the sequential path, when it did.
    pub fallback: Option<&'static str>,
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ShardedRunResult {
    /// Mean response time in seconds — the paper's performance metric.
    pub fn mean_response(&self) -> f64 {
        self.summary.mean
    }

    /// FNV-1a digest of the run's observables (response times, makespan,
    /// counters, events). Two runs of the same scenario — sequential or
    /// sharded, any shard count, any thread interleaving — must digest
    /// identically; the determinism property tests compare these.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.response_times {
            h = fnv(h, &d.nanos().to_le_bytes());
        }
        h = fnv(h, &self.makespan.nanos().to_le_bytes());
        h = fnv(h, format!("{:?}", self.counters).as_bytes());
        h = fnv(h, &self.events.to_le_bytes());
        h
    }
}

/// Can `config` run sharded at all? `Err` names the global coupling that
/// forces the sequential path:
///
/// * the static policy holds a *global* FCFS queue whose admissions depend
///   on cross-partition completion order;
/// * gang scheduling and finite MPLs couple partitions the same way;
/// * fault requeues re-place jobs across partition boundaries;
/// * a single partition cannot be cut (shards respect partition
///   granularity — one partition shares one interconnect and one queue).
///
/// Open arrivals are rejected at the entry point ([`run_batch_sharded`]
/// takes a closed batch); an arrival-time admission also depends on the
/// global load picture.
pub fn shard_eligibility(config: &ExperimentConfig) -> Result<(), &'static str> {
    if config.policy != PolicyKind::TimeSharing {
        return Err("static policy: the global FCFS queue couples partitions");
    }
    if !matches!(config.discipline, Discipline::Uncoordinated) {
        return Err("gang scheduling: rotation ticks couple partitions");
    }
    if config.mpl.is_some() {
        return Err("finite MPL: admission depends on cross-partition completions");
    }
    if !config.machine.faults.is_empty() {
        return Err("fault plan: requeues re-place jobs across partitions");
    }
    match config.try_plan() {
        Err(_) => Err("unrealizable partition plan"),
        Ok(plan) if plan.count() < 2 => {
            Err("single partition: shards cannot cut below partition granularity")
        }
        Ok(_) => Ok(()),
    }
}

/// A sensible shard count for `config` on this host: one shard per
/// partition, capped by available parallelism and 8 (barrier costs grow
/// with width faster than these closed batches can amortize).
pub fn default_shards(config: &ExperimentConfig) -> usize {
    let parts = config.system_size / config.partition_size.max(1);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    parts.min(cpus).clamp(1, 8)
}

/// Classify the lookahead the shard cut admits. No cross-shard channel
/// (the paper's wiring: partitions are closed) means the shards are
/// independent; otherwise the cheapest cross-shard interaction is one
/// store-and-forward hop, bounded below by the link startup time.
fn classify_lookahead(
    net: &SystemNet,
    partition_size: usize,
    shard_plan: &ShardPlan,
    cfg: &MachineConfig,
) -> Result<Lookahead, &'static str> {
    let crossing = net.channels().iter().any(|c| {
        let a = shard_plan.shard_of(c.from as usize / partition_size);
        let b = shard_plan.shard_of(c.to as usize / partition_size);
        a != b
    });
    if !crossing {
        return Ok(Lookahead::Independent);
    }
    if cfg.link_startup.nanos() == 0 {
        return Err("zero-latency cross-shard links admit no lookahead window");
    }
    Ok(Lookahead::Finite(cfg.link_startup))
}

/// The sequential path, producing the same observable set as the sharded
/// one (mirrors `experiment::execute` without instrumentation, keeping
/// the machine counters accessible).
fn run_sequential(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    fallback: Option<&'static str>,
) -> Result<ShardedRunResult, RunError> {
    let plan = config.try_plan().map_err(|e| {
        RunError::aborted(format!("unrealizable configuration {}: {e}", config.label()))
    })?;
    let machine = Machine::new(config.machine.clone(), SystemNet::from_plan(&plan));
    let mut driver = Driver::new(
        machine,
        plan,
        config.policy,
        config.rule,
        config.placement,
        batch,
    );
    if let Some(mpl) = config.mpl {
        driver = driver.with_mpl(mpl);
    }
    driver = driver.with_discipline(config.discipline);
    let mut engine: Engine<Event> = Engine::new(config.queue);
    engine.max_events = config.machine.max_events;
    driver.start(&mut engine);
    let outcome = engine.run(&mut driver);
    if outcome != RunOutcome::Drained || !driver.all_done() {
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis: driver.diagnose(),
        });
    }
    let response_times = driver.response_times();
    let summary = Summary::of_durations(&response_times);
    Ok(ShardedRunResult {
        response_times,
        summary,
        makespan: engine.now().since(SimTime::ZERO),
        counters: driver.machine.counters.clone(),
        events: engine.events_processed(),
        shards: 1,
        fallback,
    })
}

/// Execute one closed-batch run of `config`, sharded over up to `shards`
/// threads when the configuration is eligible ([`shard_eligibility`]);
/// otherwise run sequentially and record why. The observables are
/// bit-identical either way.
pub fn run_batch_sharded(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    shards: usize,
) -> Result<ShardedRunResult, RunError> {
    if shards <= 1 {
        return run_sequential(config, batch, None);
    }
    if let Err(reason) = shard_eligibility(config) {
        return run_sequential(config, batch, Some(reason));
    }
    let plan = config.plan();
    let p = plan.count();
    let shard_plan = ShardPlan::contiguous(p, shards);
    let k = shard_plan.shards;
    debug_assert!(k >= 2, "eligibility guarantees at least two partitions");
    let lookahead = match classify_lookahead(
        &SystemNet::from_plan(&plan),
        plan.partition_size,
        &shard_plan,
        &config.machine,
    ) {
        Ok(l) => l,
        Err(reason) => return run_sequential(config, batch, Some(reason)),
    };

    // Host-link serialization: job i's load starts once loads 0..i are
    // done (all arrive at t = 0 and admission is immediate, so the
    // sequential loader grants in submission order).
    let mut floors = Vec::with_capacity(batch.len());
    let mut at = 0u64;
    for spec in &batch {
        floors.push(SimTime(at));
        at += config.machine.load_duration(spec.effective_ship_bytes()).nanos();
    }

    // Round-robin admission: job i lands on partition i mod P, hence on
    // the shard owning that partition.
    let mut members_of: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..batch.len() {
        members_of[shard_plan.shard_of(i % p)].push(i);
    }

    let mut drivers = Vec::with_capacity(k);
    for (s, members) in members_of.iter().enumerate() {
        let sub_plan = PartitionPlan {
            system_size: plan.system_size,
            partition_size: plan.partition_size,
            partitions: shard_plan
                .partitions_of(s)
                .iter()
                .map(|&q| plan.partitions[q].clone())
                .collect(),
        };
        // Each shard simulates the full node/link array (its partitions
        // never talk to the others', so the rest sits idle); the driver
        // only schedules onto the shard's own partitions.
        let machine = Machine::new(config.machine.clone(), SystemNet::from_plan(&plan));
        let driver = Driver::new(
            machine,
            sub_plan,
            config.policy,
            config.rule,
            config.placement,
            members.iter().map(|&i| batch[i].clone()).collect(),
        )
        .with_discipline(config.discipline)
        .with_job_indices(members.clone())
        .with_load_floors(members.iter().map(|&i| floors[i]).collect());
        drivers.push(driver);
    }

    let mut sharded: ShardedEngine<Event> = ShardedEngine::new(k, config.queue, lookahead);
    for (s, driver) in drivers.iter_mut().enumerate() {
        let engine = sharded.shard_mut(s);
        engine.max_events = config.machine.max_events;
        driver.start(engine);
    }
    let mut models: Vec<Solo<Driver>> = drivers.into_iter().map(Solo).collect();
    let outcome = sharded.run(&mut models);
    if outcome != RunOutcome::Drained || models.iter().any(|m| !m.0.all_done()) {
        let mut diagnosis = String::new();
        for (s, m) in models.iter().enumerate() {
            if !m.0.all_done() {
                diagnosis.push_str(&format!("shard {s}:\n{}\n", m.0.diagnose()));
            }
        }
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis,
        });
    }

    let mut response_times = vec![SimDuration::ZERO; batch.len()];
    let mut counters = Counters::default();
    for (s, m) in models.iter().enumerate() {
        let local = m.0.response_times();
        for (j, &i) in members_of[s].iter().enumerate() {
            response_times[i] = local[j];
        }
        counters.absorb(&m.0.machine.counters);
    }
    let summary = Summary::of_durations(&response_times);
    Ok(ShardedRunResult {
        response_times,
        summary,
        makespan: sharded.now().since(SimTime::ZERO),
        counters,
        events: sharded.events_processed(),
        shards: k,
        fallback: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_machine::{FaultPlan, NodeCrash, Op, ProcSpec, Rank, Tag};
    use parsched_topology::TopologyKind;

    /// 16 nodes in 4-node hypercube partitions under uncoordinated
    /// time-sharing: the eligible sharding shape.
    fn eligible_config() -> ExperimentConfig {
        ExperimentConfig::paper(
            4,
            TopologyKind::Hypercube { dim: 0 },
            PolicyKind::TimeSharing,
        )
    }

    /// Jobs of two chatty processes: compute, exchange a message pair,
    /// compute again. Exercises the in-partition network and the host-link
    /// loader (distinct footprints => distinct load durations).
    fn chatty_batch(count: usize) -> Vec<JobSpec> {
        (0..count)
            .map(|i| {
                let ms = 2 + i as u64;
                JobSpec {
                    name: format!("chat{i}"),
                    ship_bytes: 0,
                    procs: vec![
                        ProcSpec {
                            program: vec![
                                Op::Compute(SimDuration::from_millis(ms)),
                                Op::Send {
                                    to: Rank(1),
                                    bytes: 5_000 + 1_000 * i as u64,
                                    tag: Tag(1),
                                },
                                Op::Recv { tag: Tag(2) },
                                Op::Compute(SimDuration::from_millis(1)),
                            ],
                            mem_bytes: 50_000 + 10_000 * i as u64,
                        },
                        ProcSpec {
                            program: vec![
                                Op::Recv { tag: Tag(1) },
                                Op::Send {
                                    to: Rank(0),
                                    bytes: 3_000,
                                    tag: Tag(2),
                                },
                                Op::Compute(SimDuration::from_millis(ms / 2 + 1)),
                            ],
                            mem_bytes: 40_000,
                        },
                    ],
                }
            })
            .collect()
    }

    #[test]
    fn eligibility_gate_names_each_coupling() {
        assert!(shard_eligibility(&eligible_config()).is_ok());

        let mut c = eligible_config();
        c.policy = PolicyKind::Static;
        assert!(shard_eligibility(&c).unwrap_err().contains("static"));

        let mut c = eligible_config();
        c.discipline = Discipline::Gang {
            slot: SimDuration::from_millis(4),
        };
        assert!(shard_eligibility(&c).unwrap_err().contains("gang"));

        let mut c = eligible_config();
        c.mpl = Some(2);
        assert!(shard_eligibility(&c).unwrap_err().contains("MPL"));

        let mut c = eligible_config();
        c.machine.faults = FaultPlan {
            crashes: vec![NodeCrash {
                node: 1,
                at: SimTime(5),
            }],
            ..FaultPlan::default()
        };
        assert!(shard_eligibility(&c).unwrap_err().contains("fault"));

        let c = ExperimentConfig::paper(16, TopologyKind::Linear, PolicyKind::TimeSharing);
        assert!(shard_eligibility(&c).unwrap_err().contains("single partition"));
    }

    #[test]
    fn sharded_observables_match_sequential_bit_for_bit() {
        let config = eligible_config();
        let batch = chatty_batch(9);
        let seq = run_batch_sharded(&config, batch.clone(), 1).unwrap();
        assert_eq!(seq.shards, 1);
        assert_eq!(seq.fallback, None);
        for k in [2, 3, 4, 8] {
            let par = run_batch_sharded(&config, batch.clone(), k).unwrap();
            assert_eq!(par.shards, k.min(4), "4 partitions clamp the cut");
            assert_eq!(par.fallback, None);
            assert_eq!(par.response_times, seq.response_times, "k={k}");
            assert_eq!(par.makespan, seq.makespan, "k={k}");
            assert_eq!(par.counters, seq.counters, "k={k}");
            assert_eq!(par.events, seq.events, "k={k}");
            assert_eq!(par.fingerprint(), seq.fingerprint(), "k={k}");
        }
    }

    #[test]
    fn sharded_matches_run_batch_front_door() {
        let config = eligible_config();
        let batch = chatty_batch(6);
        let front = crate::experiment::run_batch(&config, batch.clone()).unwrap();
        let par = run_batch_sharded(&config, batch, 4).unwrap();
        assert_eq!(par.response_times, front.response_times);
        assert_eq!(par.makespan, front.makespan);
        assert_eq!(par.events, front.events);
    }

    #[test]
    fn ineligible_config_falls_back_with_reason() {
        let mut config = eligible_config();
        config.policy = PolicyKind::Static;
        let batch = chatty_batch(4);
        let r = run_batch_sharded(&config, batch.clone(), 4).unwrap();
        assert_eq!(r.shards, 1);
        assert!(r.fallback.unwrap().contains("static"));
        let seq = run_batch_sharded(&config, batch, 1).unwrap();
        assert_eq!(r.response_times, seq.response_times);
    }

    #[test]
    fn repeated_sharded_runs_are_interleaving_deterministic() {
        let config = eligible_config();
        let batch = chatty_batch(7);
        let first = run_batch_sharded(&config, batch.clone(), 4).unwrap();
        for _ in 0..3 {
            let again = run_batch_sharded(&config, batch.clone(), 4).unwrap();
            assert_eq!(again.fingerprint(), first.fingerprint());
            assert_eq!(again.response_times, first.response_times);
        }
    }

    #[test]
    fn default_shards_respects_partitions_and_caps() {
        let c = eligible_config(); // 4 partitions
        assert!(default_shards(&c) >= 1);
        assert!(default_shards(&c) <= 4);
        let c = ExperimentConfig::paper(1, TopologyKind::Linear, PolicyKind::TimeSharing);
        assert!(default_shards(&c) <= 8, "16 partitions cap at 8");
    }
}
