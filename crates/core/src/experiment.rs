//! Experiment configuration and execution.
//!
//! One *run* = one batch through one machine under one policy. One
//! *experiment* = the paper's scoring of a configuration: a single run for
//! time-sharing (all jobs start together, order is immaterial), and the
//! average of best-ordered and worst-ordered runs for the static policy
//! (§5.1: "the response time in the static policy is taken as the average
//! of best and worst response times").

use crate::driver::Driver;
use crate::policy::{Discipline, Placement, PolicyKind, QuantumRule};
use parsched_des::{Engine, QueueKind, RunOutcome, SimDuration, SimTime, Summary};
use parsched_machine::{
    Event, JobSpec, Machine, MachineConfig, MachineMetrics, MachineStats, SystemNet,
};
use parsched_obs::{CollectRecorder, TimedEvent, TraceLayout};
use parsched_topology::{config_label, PartitionPlan, PlanError, TopologyKind};
use std::fmt;

/// Everything needed to run one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Total processors (the paper's machine: 16).
    pub system_size: usize,
    /// Processors per partition (1, 2, 4, 8 or 16).
    pub partition_size: usize,
    /// Interconnect of each partition.
    pub topology: TopologyKind,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Quantum derivation for time-sharing.
    pub rule: QuantumRule,
    /// Process-to-processor mapping.
    pub placement: Placement,
    /// Time-sharing coordination discipline (gang vs. uncoordinated).
    pub discipline: Discipline,
    /// Per-partition multiprogramming limit override (`None` = policy
    /// default: 1 for static, unbounded for time-sharing).
    pub mpl: Option<usize>,
    /// Machine timing parameters.
    pub machine: MachineConfig,
    /// Engine backend.
    pub queue: QueueKind,
}

impl ExperimentConfig {
    /// The paper's default machine with the given partitioning and policy.
    pub fn paper(partition_size: usize, topology: TopologyKind, policy: PolicyKind) -> Self {
        ExperimentConfig {
            system_size: 16,
            partition_size,
            topology,
            policy,
            rule: QuantumRule::default(),
            placement: Placement::default(),
            discipline: Discipline::default(),
            mpl: None,
            machine: MachineConfig::default(),
            queue: QueueKind::default(),
        }
    }

    /// The figure-axis label, e.g. `8L`.
    pub fn label(&self) -> String {
        config_label(self.partition_size, self.topology)
    }

    /// Build the partition plan, reporting an unrealizable combination as
    /// a typed [`PlanError`] (the run entry points surface it as a
    /// [`RunError`] instead of panicking).
    pub fn try_plan(&self) -> Result<PartitionPlan, PlanError> {
        PartitionPlan::try_equal(self.system_size, self.partition_size, self.topology)
    }

    /// Build the partition plan (panics on unrealizable combinations; use
    /// [`ExperimentConfig::try_plan`] to probe first).
    pub fn plan(&self) -> PartitionPlan {
        self.try_plan().unwrap_or_else(|e| {
            panic!(
                "unrealizable partitioning: {} processors into {}-{}: {e}",
                self.system_size, self.partition_size, self.topology
            )
        })
    }
}

/// Batch submission order for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOrder {
    /// As generated.
    AsGiven,
    /// Ascending sequential demand (the static policy's best case).
    SmallestFirst,
    /// Descending sequential demand (the static policy's worst case).
    LargestFirst,
}

/// A failed run.
#[derive(Debug, Clone)]
pub struct RunError {
    /// The engine outcome when the simulation itself stalled or overran
    /// its budget; `None` when the run never produced one (rejected
    /// configuration, panicking task, or a lost parallel task).
    pub outcome: Option<RunOutcome>,
    /// Diagnostic dump from the driver, or the rejection/panic message.
    pub diagnosis: String,
}

impl RunError {
    /// A run that aborted before (or without) an engine outcome.
    pub fn aborted(diagnosis: impl Into<String>) -> RunError {
        RunError {
            outcome: None,
            diagnosis: diagnosis.into(),
        }
    }

    /// Task `index` panicked; `payload` is what `catch_unwind` caught.
    pub fn panicked(index: usize, payload: &(dyn std::any::Any + Send)) -> RunError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunError::aborted(format!("task {index} panicked: {msg}"))
    }

    /// A parallel worker exited without reporting a result for task
    /// `index` (should be unreachable; named so it is diagnosable if not).
    pub fn lost(index: usize) -> RunError {
        RunError::aborted(format!(
            "task {index} lost: worker exited without reporting a result"
        ))
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            Some(outcome) => write!(f, "run failed ({outcome:?}):\n{}", self.diagnosis),
            None => write!(f, "run aborted:\n{}", self.diagnosis),
        }
    }
}

impl std::error::Error for RunError {}

/// Output of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-job response times in submission order.
    pub response_times: Vec<SimDuration>,
    /// Summary of the response times (seconds).
    pub summary: Summary,
    /// Completion time of the whole batch.
    pub makespan: SimDuration,
    /// Machine statistics at completion.
    pub stats: MachineStats,
    /// Engine events processed.
    pub events: u64,
}

impl RunResult {
    /// Mean response time in seconds — the paper's performance metric.
    pub fn mean_response(&self) -> f64 {
        self.summary.mean
    }
}

/// Order a batch according to `order` (stable, by sequential demand).
pub fn order_batch(mut batch: Vec<JobSpec>, order: BatchOrder) -> Vec<JobSpec> {
    match order {
        BatchOrder::AsGiven => {}
        BatchOrder::SmallestFirst => {
            batch.sort_by_key(|j| j.total_compute());
        }
        BatchOrder::LargestFirst => {
            batch.sort_by_key(|j| std::cmp::Reverse(j.total_compute()));
        }
    }
    batch
}

/// Execute one run of `batch` (already ordered) under `config`, with the
/// whole batch arriving at t = 0 (the paper's closed setting).
pub fn run_batch(config: &ExperimentConfig, batch: Vec<JobSpec>) -> Result<RunResult, RunError> {
    run_batch_with_arrivals(config, batch, Vec::new())
}

/// Execute one run of an *open* workload: job `i` arrives at `arrivals[i]`
/// (an empty vector means the whole batch arrives at t = 0). Response times
/// are measured from each job's own arrival.
pub fn run_batch_with_arrivals(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    arrivals: Vec<SimTime>,
) -> Result<RunResult, RunError> {
    execute(config, batch, arrivals, false).map(|(r, _)| r)
}

/// Everything the observability layer captured during one run.
///
/// Produced by [`run_batch_observed`]; feed `events` + `layout` to
/// [`parsched_obs::ChromeTrace::build`] and render `metrics.registry` with
/// [`crate::report::metrics_table`].
#[derive(Debug)]
pub struct ObsArtifacts {
    /// The typed event stream, in simulation order.
    pub events: Vec<TimedEvent>,
    /// Events discarded by the collector's capacity bound (0 normally).
    pub dropped: u64,
    /// The machine's time-weighted gauges, closed at the run's end time.
    pub metrics: MachineMetrics,
    /// Node/link/job naming for the Chrome-trace exporter.
    pub layout: TraceLayout,
}

/// Like [`run_batch`], with full instrumentation: a typed event recorder
/// and the machine metrics registry are installed for the run and returned
/// alongside the (bit-identical) simulated result.
///
/// Instrumentation only observes — it never schedules events or touches
/// the RNG — so the `RunResult` here is exactly what [`run_batch`] returns
/// for the same inputs.
pub fn run_batch_observed(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
) -> Result<(RunResult, ObsArtifacts), RunError> {
    execute(config, batch, Vec::new(), true)
        .map(|(r, obs)| (r, obs.expect("instrumented run returns artifacts")))
}

/// Shared run executor; `instrument` installs the event recorder + metrics
/// registry and returns them as [`ObsArtifacts`].
fn execute(
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    arrivals: Vec<SimTime>,
    instrument: bool,
) -> Result<(RunResult, Option<ObsArtifacts>), RunError> {
    let plan = config.try_plan().map_err(|e| {
        RunError::aborted(format!(
            "unrealizable configuration {}: {e}",
            config.label()
        ))
    })?;
    let net = SystemNet::from_plan(&plan);
    let mut machine = Machine::new(config.machine.clone(), net);
    if instrument {
        machine.recorder = Some(Box::new(CollectRecorder::new()));
        machine.metrics = Some(Box::new(MachineMetrics::new(machine.net(), machine.t0())));
    }
    let mut driver = Driver::new(
        machine,
        plan,
        config.policy,
        config.rule,
        config.placement,
        batch,
    );
    if let Some(mpl) = config.mpl {
        driver = driver.with_mpl(mpl);
    }
    driver = driver.with_discipline(config.discipline);
    if !arrivals.is_empty() {
        driver = driver.with_arrivals(arrivals);
    }
    let mut engine: Engine<Event> = Engine::new(config.queue);
    engine.max_events = config.machine.max_events;
    driver.start(&mut engine);
    let outcome = engine.run(&mut driver);
    if outcome != RunOutcome::Drained || !driver.all_done() {
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis: driver.diagnose(),
        });
    }
    let response_times = driver.response_times();
    let summary = Summary::of_durations(&response_times);
    let makespan = engine.now().since(SimTime::ZERO);
    let stats = MachineStats::capture(&driver.machine, engine.now());
    let obs = if instrument {
        let machine = &mut driver.machine;
        let mut metrics = machine.metrics.take().expect("metrics installed above");
        metrics.registry.finish(engine.now());
        let mut recorder = machine.recorder.take().expect("recorder installed above");
        let collector = recorder
            .as_any_mut()
            .downcast_mut::<CollectRecorder>()
            .expect("installed a CollectRecorder above");
        let layout = TraceLayout {
            node_count: u32::try_from(machine.net().nodes()).expect("node count exceeds u32"),
            links: machine
                .net()
                .channels()
                .iter()
                .map(|c| (c.from, c.to))
                .collect(),
            job_names: machine.jobs().iter().map(|j| j.name.clone()).collect(),
        };
        Some(ObsArtifacts {
            events: collector.take_events(),
            dropped: collector.dropped(),
            metrics: *metrics,
            layout,
        })
    } else {
        None
    };
    Ok((
        RunResult {
            response_times,
            summary,
            makespan,
            stats,
            events: engine.events_processed(),
        },
        obs,
    ))
}

/// A replicated experiment's aggregate: mean of per-replication scores
/// with a Student-t confidence interval.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Per-replication scored means (seconds).
    pub means: Vec<f64>,
    /// Grand mean.
    pub mean: f64,
    /// Half-width of the two-sided confidence interval.
    pub half_width: f64,
    /// Confidence level used.
    pub confidence: f64,
}

/// Run `replications` independent experiments, one per batch produced by
/// `make_batch(replication_index)`, and aggregate the scored means with a
/// Student-t confidence interval. Use for stochastic workloads (synthetic
/// batches with different seeds); the paper's fixed batches are
/// deterministic and need no replication.
///
/// # Panics
/// Panics if `replications < 2`.
pub fn run_replicated(
    config: &ExperimentConfig,
    replications: usize,
    confidence: f64,
    mut make_batch: impl FnMut(usize) -> Vec<JobSpec>,
) -> Result<ReplicatedResult, RunError> {
    assert!(replications >= 2, "need at least two replications for a CI");
    let mut means = Vec::with_capacity(replications);
    for i in 0..replications {
        let batch = make_batch(i);
        let r = run_experiment(config, &batch)?;
        means.push(r.mean_response);
    }
    let mut w = parsched_des::Welford::new();
    for &m in &means {
        w.record(m);
    }
    let t = parsched_des::stats::t_critical(replications - 1, confidence);
    let half_width = t * w.std_dev() / (replications as f64).sqrt();
    Ok(ReplicatedResult {
        mean: w.mean(),
        means,
        half_width,
        confidence,
    })
}

/// The paper's score for one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Figure-axis label of the configuration.
    pub label: String,
    /// Policy run.
    pub policy: PolicyKind,
    /// The scored mean response time (seconds): average of best and worst
    /// orderings for static, the single run for time-sharing.
    pub mean_response: f64,
    /// Best-ordering run (static) / the only run (time-sharing).
    pub primary: RunResult,
    /// Worst-ordering run (static only).
    pub worst: Option<RunResult>,
}

/// Run the full experiment for one configuration and batch.
pub fn run_experiment(
    config: &ExperimentConfig,
    batch: &[JobSpec],
) -> Result<ExperimentResult, RunError> {
    let label = config.label();
    match config.policy {
        PolicyKind::TimeSharing => {
            // Submission order also matters (mildly) under time-sharing
            // because job loads serialize on the host link; score it the
            // same way as the static policy so neither gets an ordering
            // advantage.
            let best = run_batch(
                config,
                order_batch(batch.to_vec(), BatchOrder::SmallestFirst),
            )?;
            let worst = run_batch(
                config,
                order_batch(batch.to_vec(), BatchOrder::LargestFirst),
            )?;
            let mean = (best.mean_response() + worst.mean_response()) / 2.0;
            Ok(ExperimentResult {
                label,
                policy: config.policy,
                mean_response: mean,
                primary: best,
                worst: Some(worst),
            })
        }
        PolicyKind::Static => {
            let best = run_batch(
                config,
                order_batch(batch.to_vec(), BatchOrder::SmallestFirst),
            )?;
            let worst = run_batch(
                config,
                order_batch(batch.to_vec(), BatchOrder::LargestFirst),
            )?;
            let mean = (best.mean_response() + worst.mean_response()) / 2.0;
            Ok(ExperimentResult {
                label,
                policy: config.policy,
                mean_response: mean,
                primary: best,
                worst: Some(worst),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::SimDuration;
    use parsched_machine::{Op, ProcSpec};

    /// Config with loader costs zeroed so tests measure pure scheduling.
    fn quick(system_size: usize, policy: PolicyKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig {
            system_size,
            ..ExperimentConfig::paper(1, TopologyKind::Linear, policy)
        };
        cfg.machine.job_load_latency = SimDuration::from_millis(1);
        cfg.machine.host_link_per_byte = SimDuration::ZERO;
        cfg
    }

    fn tiny_batch(count: usize, millis: u64) -> Vec<JobSpec> {
        (0..count)
            .map(|i| JobSpec {
                name: format!("tiny{i}"),
                ship_bytes: 0,
                procs: vec![ProcSpec {
                    program: vec![Op::Compute(SimDuration::from_millis(millis * (i as u64 + 1)))],
                    mem_bytes: 1000,
                }],
            })
            .collect()
    }

    #[test]
    fn order_batch_sorts_by_demand() {
        let batch = tiny_batch(4, 10);
        let best = order_batch(batch.clone(), BatchOrder::SmallestFirst);
        assert_eq!(best[0].name, "tiny0");
        assert_eq!(best[3].name, "tiny3");
        let worst = order_batch(batch.clone(), BatchOrder::LargestFirst);
        assert_eq!(worst[0].name, "tiny3");
        let given = order_batch(batch, BatchOrder::AsGiven);
        assert_eq!(given[0].name, "tiny0");
    }

    #[test]
    fn static_run_is_serial_per_partition() {
        // 4 single-process jobs on 4 single-node partitions: all parallel.
        let config = quick(4, PolicyKind::Static);
        let r = run_batch(&config, tiny_batch(4, 10)).unwrap();
        assert_eq!(r.response_times.len(), 4);
        // Longest job is 40 ms; makespan ~ load + 40 ms.
        assert!(r.makespan >= SimDuration::from_millis(40));
        assert!(r.makespan <= SimDuration::from_millis(45));
    }

    #[test]
    fn static_queues_when_partitions_busy() {
        // 4 jobs, ONE single-node partition: strictly serial.
        let config = quick(1, PolicyKind::Static);
        let r = run_batch(&config, tiny_batch(4, 10)).unwrap();
        // 10+20+30+40 ms of work; later loads hide behind execution
        // (prefetch), so only the first load latency is exposed.
        assert!(r.makespan >= SimDuration::from_millis(100));
        assert!(r.makespan <= SimDuration::from_millis(110));
        // FCFS: response times strictly increase in submission order.
        for w in r.response_times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn time_sharing_admits_everything_at_once() {
        let config = quick(1, PolicyKind::TimeSharing);
        let r = run_batch(&config, tiny_batch(4, 10)).unwrap();
        // Under RR the shortest job (10 ms) finishes around 4x10 ms, far
        // sooner than it would behind 90 ms of FCFS backlog... and the
        // longest finishes last at ~the total work.
        assert!(r.response_times[0] < SimDuration::from_millis(60));
        assert!(r.response_times[3] >= SimDuration::from_millis(99));
    }

    #[test]
    fn rr_beats_fcfs_for_short_jobs_in_the_mean() {
        // One CPU, highly skewed demands: time-sharing's mean response must
        // beat the static average of best/worst orderings.
        let batch: Vec<JobSpec> = [400u64, 10, 10, 10, 10, 10]
            .iter()
            .enumerate()
            .map(|(i, &ms)| JobSpec {
                name: format!("skew{i}"),
                ship_bytes: 0,
                procs: vec![ProcSpec {
                    program: vec![Op::Compute(SimDuration::from_millis(ms))],
                    mem_bytes: 0,
                }],
            })
            .collect();
        let st = run_experiment(&quick(1, PolicyKind::Static), &batch).unwrap();
        let ts = run_experiment(&quick(1, PolicyKind::TimeSharing), &batch).unwrap();
        assert!(
            ts.mean_response < st.mean_response,
            "ts {} !< static {}",
            ts.mean_response,
            st.mean_response
        );
        assert!(st.worst.is_some());
        assert!(ts.worst.is_some());
    }

    #[test]
    fn replicated_experiments_aggregate_with_ci() {
        let config = quick(2, PolicyKind::Static);
        let result = run_replicated(&config, 5, 0.95, |i| {
            tiny_batch(4, 5 + i as u64)
        })
        .unwrap();
        assert_eq!(result.means.len(), 5);
        assert!(result.mean > 0.0);
        assert!(result.half_width >= 0.0);
        // Means grow with i (work scales), so the CI is non-degenerate.
        assert!(result.half_width > 0.0);
        assert!((result.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn unrealizable_config_is_an_error_not_a_panic() {
        let mut config = quick(16, PolicyKind::Static);
        config.partition_size = 3;
        let err = run_batch(&config, tiny_batch(1, 1)).unwrap_err();
        assert!(err.outcome.is_none());
        let msg = format!("{err}");
        assert!(msg.contains("does not divide"), "unexpected error: {msg}");
        assert!(msg.contains("run aborted"), "unexpected error: {msg}");
    }

    #[test]
    #[should_panic(expected = "at least two replications")]
    fn replication_requires_two_runs() {
        let config = quick(1, PolicyKind::Static);
        let _ = run_replicated(&config, 1, 0.95, |_| tiny_batch(1, 1));
    }

    #[test]
    fn dynamic_quantum_lone_job_runs_preemption_free() {
        // With only one resident job the dynamic quantum equals the job's
        // whole remaining demand: it should never timeslice.
        let mut config = quick(1, PolicyKind::TimeSharing);
        config.discipline = Discipline::DynamicQuantum {
            base: SimDuration::from_millis(2),
        };
        let r = run_batch(&config, tiny_batch(1, 100)).unwrap();
        assert!(
            r.stats.quantum_expiries <= 1,
            "lone job timesliced {} times",
            r.stats.quantum_expiries
        );
    }

    #[test]
    fn dynamic_quantum_cuts_context_switches() {
        // Same batch, same machine: the dynamic discipline must complete
        // everything with far fewer quantum expiries than the fixed 2 ms
        // RR-job rule (that is its whole point).
        let batch = tiny_batch(4, 50);
        let fixed = run_batch(&quick(1, PolicyKind::TimeSharing), batch.clone()).unwrap();
        let mut config = quick(1, PolicyKind::TimeSharing);
        config.discipline = Discipline::DynamicQuantum {
            base: SimDuration::from_millis(2),
        };
        let dynq = run_batch(&config, batch).unwrap();
        assert_eq!(dynq.response_times.len(), 4);
        assert!(
            dynq.stats.quantum_expiries * 4 < fixed.stats.quantum_expiries,
            "dynamic {} !<< fixed {}",
            dynq.stats.quantum_expiries,
            fixed.stats.quantum_expiries
        );
    }

    #[test]
    fn dynamic_quantum_replays_identically() {
        let mut config = quick(2, PolicyKind::TimeSharing);
        config.discipline = Discipline::DynamicQuantum {
            base: SimDuration::from_millis(2),
        };
        let a = run_batch(&config, tiny_batch(6, 10)).unwrap();
        let b = run_batch(&config, tiny_batch(6, 10)).unwrap();
        assert_eq!(a.response_times, b.response_times);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn mpl_override_bounds_admission() {
        // MPL 2 on one partition of one node: jobs 3 and 4 must wait.
        let mut config = quick(1, PolicyKind::TimeSharing);
        config.mpl = Some(2);
        let r = run_batch(&config, tiny_batch(4, 10)).unwrap();
        // With MPL 2 the first two (10, 20 ms) share; job 1 done ~20 ms.
        assert!(r.response_times[0] <= SimDuration::from_millis(25));
        // Everything completes.
        assert_eq!(r.response_times.len(), 4);
    }
}
