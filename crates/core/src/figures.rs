//! Paper-figure experiment definitions.
//!
//! One function per figure/ablation of DESIGN.md's experiment index. Each
//! returns a [`FigureTable`] of mean response times that the `figures`
//! binary prints and EXPERIMENTS.md records.

use crate::experiment::{run_experiment, ExperimentConfig, RunError};
use crate::policy::{Discipline, Placement, PolicyKind, QuantumRule};
use crate::report::{FigureRow, FigureTable};
use crate::runner::run_parallel;
use parsched_des::rng::DetRng;
use parsched_des::SimDuration;
use parsched_machine::{FlowControl, JobSpec, MachineConfig, Switching};
use parsched_topology::{paper_configs, PartitionPlan, TopologyKind};
use parsched_workload::{
    paper_batch, pipeline_job, synthetic_batch, App, Arch, BatchSizes, CostModel,
    PipelineParams, SyntheticParams,
};

/// Shared options for figure generation.
#[derive(Debug, Clone)]
pub struct FigureOpts {
    /// Batch composition and problem sizes.
    pub sizes: BatchSizes,
    /// Cost model.
    pub cost: CostModel,
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Quantum rule for time-sharing.
    pub rule: QuantumRule,
    /// Placement strategy.
    pub placement: Placement,
    /// Include the 16-node hypercube the real machine could not wire.
    pub include_16h: bool,
    /// Run the grid's configurations on multiple threads.
    pub parallel: bool,
    /// Master seed for stochastic workloads (ablations).
    pub seed: u64,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            sizes: BatchSizes::default(),
            cost: CostModel::default(),
            machine: MachineConfig::default(),
            rule: QuantumRule::default(),
            placement: Placement::default(),
            include_16h: false,
            parallel: true,
            seed: 42,
        }
    }
}

impl FigureOpts {
    fn config(
        &self,
        partition_size: usize,
        topology: TopologyKind,
        policy: PolicyKind,
    ) -> ExperimentConfig {
        ExperimentConfig {
            system_size: 16,
            partition_size,
            topology,
            policy,
            rule: self.rule,
            placement: self.placement,
            discipline: Discipline::default(),
            mpl: None,
            machine: self.machine.clone(),
            queue: parsched_des::QueueKind::default(),
        }
    }
}

/// Run `static` and `ts` over the whole partition-configuration axis for
/// one (app, arch) pair — the generic paper figure.
pub fn figure(app: App, arch: Arch, opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let configs = paper_configs(opts.include_16h);
    let mut tasks: Vec<(ExperimentConfig, Vec<JobSpec>)> = Vec::new();
    for &(p, kind) in &configs {
        let batch = paper_batch(app, arch, p, &opts.sizes, &opts.cost);
        tasks.push((opts.config(p, kind, PolicyKind::Static), batch.clone()));
        tasks.push((opts.config(p, kind, PolicyKind::TimeSharing), batch));
    }
    let results = run_parallel(tasks, opts.parallel)?;
    let mut rows = Vec::new();
    for pair in results.chunks(2) {
        rows.push(FigureRow {
            label: pair[0].label.clone(),
            static_mean: Some(pair[0].mean_response),
            ts_mean: Some(pair[1].mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: format!(
            "Mean response time (s): {} application, {} software architecture",
            app.label(),
            arch.label()
        ),
        columns: vec!["static".into(), "ts".into()],
        rows,
    })
}

/// Figure 3: matrix multiplication, fixed architecture.
pub fn fig3(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    figure(App::MatMul, Arch::Fixed, opts)
}

/// Figure 4: matrix multiplication, adaptive architecture.
pub fn fig4(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    figure(App::MatMul, Arch::Adaptive, opts)
}

/// Figure 5: sort, fixed architecture.
pub fn fig5(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    figure(App::Sort, Arch::Fixed, opts)
}

/// Figure 6: sort, adaptive architecture.
pub fn fig6(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    figure(App::Sort, Arch::Adaptive, opts)
}

/// A1 — service-demand variance sweep (§5.2 / refs [2,3]): at high CV
/// time-sharing overtakes static space-sharing.
pub fn ablation_variance(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let cvs = [0.0, 0.5, 1.0, 2.0, 3.0, 5.0];
    let rng = DetRng::new(opts.seed);
    let mut tasks = Vec::new();
    for (i, &cv) in cvs.iter().enumerate() {
        let params = SyntheticParams {
            cv,
            width: 4,
            msg_bytes: 1024,
            ..SyntheticParams::default()
        };
        let mut stream = rng.substream_idx("variance", i as u64);
        let batch = synthetic_batch(16, &params, &opts.cost, &mut stream);
        let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
        tasks.push((opts.config(16, kind, PolicyKind::Static), batch.clone()));
        tasks.push((opts.config(16, kind, PolicyKind::TimeSharing), batch));
    }
    let results = run_parallel(tasks, opts.parallel)?;
    let rows = results
        .chunks(2)
        .zip(cvs.iter())
        .map(|(pair, cv)| FigureRow {
            label: format!("cv={cv}"),
            static_mean: Some(pair[0].mean_response),
            ts_mean: Some(pair[1].mean_response),
            extra: Vec::new(),
        })
        .collect();
    Ok(FigureTable {
        title: "Mean response time (s) vs service-demand variance \
                (synthetic 4-wide fork-join, 16M, MPL 16)"
            .into(),
        columns: vec!["static".into(), "ts".into()],
        rows,
    })
}

/// A2 — topology sensitivity (§5.2): spread of mean response across
/// topologies, per policy, at fixed partition sizes.
pub fn ablation_topology(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let mut rows = Vec::new();
    for p in [8usize, 16] {
        let kinds: Vec<TopologyKind> = [
            TopologyKind::Linear,
            TopologyKind::Ring,
            TopologyKind::Mesh { rows: 0, cols: 0 },
            TopologyKind::Hypercube { dim: 0 },
        ]
        .into_iter()
        .filter(|k| PartitionPlan::equal(16, p, *k).is_some())
        .collect();
        for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
            let mut tasks = Vec::new();
            for &kind in &kinds {
                let batch =
                    paper_batch(App::MatMul, Arch::Fixed, p, &opts.sizes, &opts.cost);
                tasks.push((opts.config(p, kind, policy), batch));
            }
            let results = run_parallel(tasks, opts.parallel)?;
            let means: Vec<f64> = results.iter().map(|r| r.mean_response).collect();
            let best = means.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst = means.iter().cloned().fold(0.0, f64::max);
            rows.push(FigureRow {
                label: format!("p={p} {}", policy.label()),
                static_mean: Some(best),
                ts_mean: Some(worst),
                extra: vec![format!("{:.3}", worst / best)],
            });
        }
    }
    Ok(FigureTable {
        title: "Topology sensitivity (matmul fixed): best/worst topology mean \
                response (s) and their ratio, per policy"
            .into(),
        columns: vec!["best-topo".into(), "worst-topo".into(), "worst/best".into()],
        rows,
    })
}

/// A3 — wormhole conjecture (§5.2): the paper figures re-run under
/// cut-through switching.
pub fn ablation_wormhole(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let mut ct_opts = opts.clone();
    ct_opts.machine.switching = Switching::CutThrough;
    let saf = figure(App::MatMul, Arch::Fixed, opts)?;
    let ct = figure(App::MatMul, Arch::Fixed, &ct_opts)?;
    let rows = saf
        .rows
        .iter()
        .zip(ct.rows.iter())
        .map(|(s, c)| FigureRow {
            label: s.label.clone(),
            static_mean: c.static_mean,
            ts_mean: c.ts_mean,
            extra: vec![
                format!("{:.3}", s.static_mean.unwrap_or(0.0)),
                format!("{:.3}", s.ts_mean.unwrap_or(0.0)),
            ],
        })
        .collect();
    Ok(FigureTable {
        title: "Wormhole (cut-through) vs store-and-forward (matmul fixed): \
                mean response (s)"
            .into(),
        columns: vec![
            "ct-static".into(),
            "ct-ts".into(),
            "saf-static".into(),
            "saf-ts".into(),
        ],
        rows,
    })
}

/// A4 — basic-quantum sweep, and RR-job vs RR-process fairness.
///
/// The quantum sweep uses the paper batch; the rule comparison uses a
/// mixed batch where half the jobs have 4 processes and half 16 on a
/// 16-processor partition — under RR-process the 16-wide jobs grab 4x the
/// processing power (the unfairness §2.2 argues against), while RR-job
/// gives the narrow jobs 4x quanta to compensate.
pub fn ablation_quantum(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
    let mut rows = Vec::new();
    for &q in &[1u64, 2, 5, 10, 20] {
        let mut o = opts.clone();
        o.rule = QuantumRule::RrJob {
            base: SimDuration::from_millis(q),
        };
        let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &o.sizes, &o.cost);
        let r = run_experiment(&o.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        rows.push(FigureRow {
            label: format!("q={q}ms"),
            static_mean: None,
            ts_mean: Some(r.mean_response),
            extra: vec!["-".into()],
        });
    }
    // Rule fairness: equal-demand jobs, alternating widths 4 and 16.
    let params4 = SyntheticParams { width: 4, msg_bytes: 1024, ..SyntheticParams::default() };
    let params16 = SyntheticParams { width: 16, msg_bytes: 1024, ..SyntheticParams::default() };
    let demand = SimDuration::from_secs(2);
    let batch: Vec<parsched_machine::JobSpec> = (0..16)
        .map(|i| {
            let p = if i % 2 == 0 { &params4 } else { &params16 };
            parsched_workload::synthetic_job(format!("mix{i}"), demand, p, &opts.cost)
        })
        .collect();
    for (name, rule) in [
        ("rr-job", QuantumRule::RrJob { base: SimDuration::from_millis(2) }),
        (
            "rr-proc",
            QuantumRule::RrProcess { quantum: SimDuration::from_millis(2) },
        ),
    ] {
        let mut o = opts.clone();
        o.rule = rule;
        let r = run_experiment(&o.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        // Fairness: how much later do the narrow (width-4) jobs finish than
        // the wide ones, given equal total demand?
        let rts = &r.primary.response_times;
        let narrow: f64 =
            rts.iter().step_by(2).map(|d| d.as_secs_f64()).sum::<f64>() / 8.0;
        let wide: f64 =
            rts.iter().skip(1).step_by(2).map(|d| d.as_secs_f64()).sum::<f64>() / 8.0;
        rows.push(FigureRow {
            label: format!("mixed {name}"),
            static_mean: None,
            ts_mean: Some(r.mean_response),
            extra: vec![format!("{:.3}", narrow / wide)],
        });
    }
    Ok(FigureTable {
        title: "Quantum sensitivity (matmul fixed, 16M, time-sharing) and \
                RR-job vs RR-process fairness (mixed-width batch; last \
                column = narrow/wide mean-response ratio)"
            .into(),
        columns: vec!["ts".into(), "narrow/wide".into()],
        rows,
    })
}

/// A5 — the hybrid policy's set-size (MPL) tuning parameter (§2.3).
pub fn ablation_mpl(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
    let p = 8;
    let batch = paper_batch(App::MatMul, Arch::Adaptive, p, &opts.sizes, &opts.cost);
    let mut rows = Vec::new();
    for mpl in [1usize, 2, 4, 8] {
        let mut config = opts.config(p, kind, PolicyKind::TimeSharing);
        config.mpl = Some(mpl);
        let r = run_experiment(&config, &batch)?;
        rows.push(FigureRow {
            label: format!("mpl={mpl}"),
            static_mean: None,
            ts_mean: Some(r.mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Hybrid set-size tuning (matmul adaptive, 8M, 2 partitions): \
                mean response (s) vs per-partition MPL"
            .into(),
        columns: vec!["ts".into()],
        rows,
    })
}

/// A6 — system-overhead sensitivity: context switch and hop-handler sweep.
pub fn ablation_overheads(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let factors = [0.0, 0.5, 1.0, 2.0, 4.0];
    let base_cs = opts.machine.ctx_switch_low;
    let base_handler = opts.machine.hop_handler;
    let kind = TopologyKind::Linear;
    let mut rows = Vec::new();
    for &f in &factors {
        let mut o = opts.clone();
        o.machine.ctx_switch_low = base_cs.mul_f64(f);
        o.machine.hop_handler = base_handler.mul_f64(f);
        let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &o.sizes, &o.cost);
        let st = run_experiment(&o.config(16, kind, PolicyKind::Static), &batch)?;
        let ts = run_experiment(&o.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        rows.push(FigureRow {
            label: format!("x{f}"),
            static_mean: Some(st.mean_response),
            ts_mean: Some(ts.mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Overhead sensitivity (matmul fixed, 16L): mean response (s) \
                vs context-switch & handler cost scale"
            .into(),
        columns: vec!["static".into(), "ts".into()],
        rows,
    })
}

/// A7 — memory-size sensitivity (§6 "size of memory").
pub fn ablation_memory(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    // Below ~3 MB the paper workload's resident sets no longer fit at all
    // (the paper sized its problems against 4 MB nodes for this reason).
    let sizes_mb = [3u64, 4, 6, 8, 16];
    let kind = TopologyKind::Linear;
    let mut rows = Vec::new();
    for &mb in &sizes_mb {
        let mut o = opts.clone();
        o.machine.mem_capacity = mb * 1024 * 1024;
        let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &o.sizes, &o.cost);
        let st = run_experiment(&o.config(16, kind, PolicyKind::Static), &batch)?;
        let ts = run_experiment(&o.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        rows.push(FigureRow {
            label: format!("{mb}MB"),
            static_mean: Some(st.mean_response),
            ts_mean: Some(ts.mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Memory-size sensitivity (matmul fixed, 16L): mean response (s)"
            .into(),
        columns: vec!["static".into(), "ts".into()],
        rows,
    })
}

/// A9 — gang scheduling (coscheduling) vs the paper's uncoordinated local
/// round-robin, with a slot-length sweep. Gang scheduling aligns a job's
/// processes in time so peers exchange messages within their own slot —
/// the classic cure for exactly the fine-grain-communication penalty the
/// paper's time-sharing policy pays.
pub fn ablation_gang(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
    let mut rows = Vec::new();
    for (app, arch) in [(App::MatMul, Arch::Fixed), (App::Sort, Arch::Fixed)] {
        let batch = paper_batch(app, arch, 16, &opts.sizes, &opts.cost);
        let uncoordinated =
            run_experiment(&opts.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        rows.push(FigureRow {
            label: format!("{} uncoord", app.label()),
            static_mean: None,
            ts_mean: Some(uncoordinated.mean_response),
            extra: Vec::new(),
        });
        for slot_ms in [10u64, 50, 200] {
            let mut config = opts.config(16, kind, PolicyKind::TimeSharing);
            config.discipline = Discipline::Gang {
                slot: SimDuration::from_millis(slot_ms),
            };
            let gang = run_experiment(&config, &batch)?;
            rows.push(FigureRow {
                label: format!("{} gang {slot_ms}ms", app.label()),
                static_mean: None,
                ts_mean: Some(gang.mean_response),
                extra: Vec::new(),
            });
        }
    }
    Ok(FigureTable {
        title: "Gang scheduling vs uncoordinated time-sharing (16M, MPL 16): \
                mean response (s)"
            .into(),
        columns: vec!["ts".into()],
        rows,
    })
}

/// A10 — open-arrival load sweep (extension): a Poisson stream of
/// fork-join jobs at increasing offered load; mean response per policy.
/// The paper's batch setting is the instantaneous-saturation limit of this
/// curve; sustained-load behaviour is where the hybrid policy earns its
/// keep in later literature.
pub fn ablation_load(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    use crate::experiment::run_batch_with_arrivals;
    let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
    let params = SyntheticParams {
        width: 4,
        msg_bytes: 1024,
        ..SyntheticParams::default()
    };
    let jobs = 48usize;
    // Offered utilization: mean demand (2 s of work over 16 CPUs = 125 ms
    // of machine time per job) divided by the mean interarrival time.
    let service_machine_time = params.mean_demand.as_secs_f64() / 16.0;
    let rng = DetRng::new(opts.seed);
    let mut rows = Vec::new();
    for (i, rho) in [0.3f64, 0.5, 0.7, 0.9].into_iter().enumerate() {
        let mut demand_rng = rng.substream_idx("load-demand", i as u64);
        let batch = synthetic_batch(jobs, &params, &opts.cost, &mut demand_rng);
        let mut arr_rng = rng.substream_idx("load-arrivals", i as u64);
        let arrivals = parsched_workload::poisson_arrivals(
            jobs,
            SimDuration::from_secs_f64(service_machine_time / rho),
            &mut arr_rng,
        );
        let mut means = Vec::new();
        for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
            // Open workloads are not order-scored: arrivals fix the order.
            let r = run_batch_with_arrivals(
                &opts.config(4, kind, policy),
                batch.clone(),
                arrivals.clone(),
            )?;
            means.push(r.mean_response());
        }
        rows.push(FigureRow {
            label: format!("rho={rho}"),
            static_mean: Some(means[0]),
            ts_mean: Some(means[1]),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Open Poisson arrivals (48 synthetic jobs, 4 partitions of 4, \
                mesh): mean response (s) vs offered load"
            .into(),
        columns: vec!["static".into(), "ts".into()],
        rows,
    })
}

/// A11 — pipeline workload (extension): steady neighbour-to-neighbour
/// traffic. A deep pipeline is the worst case for slot-based coscheduling:
/// filling 16 stages takes longer than any reasonable gang slot, so waves
/// straddle rotations and every straddle costs a whole rotation period —
/// uncoordinated sharing (which lets the pipeline trickle continuously)
/// beats gang here, and dedicated processors beat both.
pub fn ablation_pipeline(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Linear; // stages map to consecutive nodes
    let params = PipelineParams {
        stages: 16,
        waves: 12,
        wave_bytes: 8 * 1024,
        stage_work: SimDuration::from_millis(20),
    };
    let batch: Vec<JobSpec> = (0..16)
        .map(|i| pipeline_job(format!("pipe{i}"), &params, &opts.cost))
        .collect();
    let mut rows = Vec::new();
    let st = run_experiment(&opts.config(16, kind, PolicyKind::Static), &batch)?;
    rows.push(FigureRow {
        label: "static".into(),
        static_mean: None,
        ts_mean: Some(st.mean_response),
        extra: Vec::new(),
    });
    let ts = run_experiment(&opts.config(16, kind, PolicyKind::TimeSharing), &batch)?;
    rows.push(FigureRow {
        label: "ts uncoord".into(),
        static_mean: None,
        ts_mean: Some(ts.mean_response),
        extra: Vec::new(),
    });
    for slot_ms in [50u64, 200] {
        let mut cfg = opts.config(16, kind, PolicyKind::TimeSharing);
        cfg.discipline = Discipline::Gang {
            slot: SimDuration::from_millis(slot_ms),
        };
        let gang = run_experiment(&cfg, &batch)?;
        rows.push(FigureRow {
            label: format!("ts gang {slot_ms}ms"),
            static_mean: None,
            ts_mean: Some(gang.mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Pipeline workload (16 stages x 12 waves, 16L): mean response \
                (s) per policy"
            .into(),
        columns: vec!["mean".into()],
        rows,
    })
}

/// A12 — the space-sharing tuning surface (extension): which equal
/// partition size minimizes static mean response, as a function of how
/// many jobs contend? Small batches want big partitions (speedup), big
/// batches want small ones (parallel slots) — the trade-off every
/// space-sharing installation has to tune, quantified on the paper's
/// machine and workload.
pub fn ablation_partition_tuning(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Ring;
    let psizes = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for jobs in [4usize, 8, 16, 32] {
        let sizes = BatchSizes {
            jobs,
            small_count: jobs * 3 / 4,
            ..opts.sizes.clone()
        };
        let mut extra = Vec::new();
        let mut best = (f64::INFINITY, 0usize);
        for &p in &psizes {
            let batch = paper_batch(App::MatMul, Arch::Adaptive, p, &sizes, &opts.cost);
            let r = run_experiment(&opts.config(p, kind, PolicyKind::Static), &batch)?;
            if r.mean_response < best.0 {
                best = (r.mean_response, p);
            }
            extra.push(format!("{:.3}", r.mean_response));
        }
        extra.push(format!("p={}", best.1));
        rows.push(FigureRow {
            label: format!("jobs={jobs}"),
            static_mean: None,
            ts_mean: None,
            extra,
        });
    }
    Ok(FigureTable {
        title: "Static space-sharing tuning surface (matmul adaptive, ring): \
                mean response (s) by partition size and batch size"
            .into(),
        columns: psizes
            .iter()
            .map(|p| format!("p={p}"))
            .chain(["best".to_string()])
            .collect(),
        rows,
    })
}

/// A8 — flow-control ablation: injection-limited vs reserved-FIFO transit
/// buffering (DESIGN.md §6).
pub fn ablation_flow_control(opts: &FigureOpts) -> Result<FigureTable, RunError> {
    let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
    let mut rows = Vec::new();
    for (name, flow) in [
        ("injection-limited", FlowControl::InjectionLimited),
        ("reserved", FlowControl::Reserved),
    ] {
        let mut o = opts.clone();
        o.machine.flow = flow;
        let batch = paper_batch(App::MatMul, Arch::Adaptive, 16, &o.sizes, &o.cost);
        let ts = run_experiment(&o.config(16, kind, PolicyKind::TimeSharing), &batch)?;
        rows.push(FigureRow {
            label: name.into(),
            static_mean: None,
            ts_mean: Some(ts.mean_response),
            extra: Vec::new(),
        });
    }
    Ok(FigureTable {
        title: "Flow-control ablation (matmul adaptive, 16M, time-sharing): \
                mean response (s)"
            .into(),
        columns: vec!["ts".into()],
        rows,
    })
}
