//! The scheduling policies of the paper (§2, §5.1).

use parsched_des::SimDuration;

/// The policy families compared by the paper.
///
/// The paper treats pure time-sharing as the hybrid policy with a single
/// partition (§5.1), so one variant covers both: `TimeSharing` with
/// partition size 16 *is* pure time-sharing; with smaller partitions it is
/// the hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Static space-sharing: one job per partition, run to completion;
    /// everyone else waits in a global FCFS queue.
    Static,
    /// Time-sharing / hybrid: the whole batch is spread equitably over the
    /// partitions and round-robins inside each (RR-job quanta).
    TimeSharing,
}

impl PolicyKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::TimeSharing => "ts",
        }
    }
}

/// How per-process quanta are derived (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumRule {
    /// The RR-job rule of Leutenegger & Vernon: `Q = (P / T) * q`, where `P`
    /// is the partition size, `T` the job's process count and `q` the basic
    /// quantum — each *job* then receives an equal share of the partition
    /// per round regardless of how many processes it has.
    RrJob {
        /// The basic quantum `q`.
        base: SimDuration,
    },
    /// The naive RR-process rule the paper argues against: every process
    /// gets the same fixed quantum, so jobs with more processes get more
    /// processing power.
    RrProcess {
        /// The fixed per-process quantum.
        quantum: SimDuration,
    },
}

impl Default for QuantumRule {
    fn default() -> Self {
        // The T805's native 2 ms low-priority quantum.
        QuantumRule::RrJob {
            base: SimDuration::from_millis(2),
        }
    }
}

impl QuantumRule {
    /// The quantum for a job of `width` processes on a partition of
    /// `partition_size` processors.
    ///
    /// ```
    /// use parsched_core::policy::QuantumRule;
    /// use parsched_des::SimDuration;
    ///
    /// let rule = QuantumRule::RrJob { base: SimDuration::from_millis(2) };
    /// // A 1-process job on 16 processors gets 16x the basic quantum...
    /// assert_eq!(rule.quantum(16, 1), SimDuration::from_millis(32));
    /// // ...so per round it receives the same processing power as a
    /// // 16-process job (which gets the basic quantum on every CPU).
    /// assert_eq!(rule.quantum(16, 16), SimDuration::from_millis(2));
    /// ```
    ///
    /// The T805 hardware timeslices at a fixed period, so the RR-job rule
    /// cannot produce quanta *below* the basic quantum: `Q = q * max(1,
    /// P/T)`. (Below-hardware quanta would also break the paper's
    /// observation that all policies coincide on single-processor
    /// partitions.)
    pub fn quantum(self, partition_size: usize, width: usize) -> SimDuration {
        match self {
            QuantumRule::RrJob { base } => {
                let ns = base.nanos() * partition_size as u64 / width.max(1) as u64;
                SimDuration::from_nanos(ns.max(base.nanos()))
            }
            QuantumRule::RrProcess { quantum } => quantum,
        }
    }
}

/// How time-sharing coordinates processes across a partition's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// The paper's scheme: every node round-robins its local ready queue
    /// independently; nothing aligns a job's processes in time.
    #[default]
    Uncoordinated,
    /// Gang scheduling (Ousterhout-style coscheduling, the classic
    /// extension): jobs in a partition take turns in global slots — during
    /// a job's slot only its processes run, on every node of the partition
    /// simultaneously, so peers can exchange messages without waiting out
    /// other jobs' quanta.
    Gang {
        /// Slot length (all of a job's processes run for this long before
        /// the partition rotates to the next job).
        slot: SimDuration,
    },
    /// The first dynamic-quantum family member (MDTQRR-style): nodes still
    /// round-robin their local ready queues independently, but the quantum
    /// is *recomputed from the partition's current job population* instead
    /// of fixed at admission. Whenever a partition's membership changes
    /// (admission, completion, failure) the driver sets every resident
    /// job's quantum to the mean per-process *remaining* demand across the
    /// partition's jobs, floored at `base`. A lone job therefore runs
    /// essentially preemption-free; a short job mixed with long ones
    /// finishes within a couple of rounds (the SJF-approximating behaviour
    /// the dynamic-quantum RR literature aims for), with far fewer context
    /// switches than a fixed small quantum.
    DynamicQuantum {
        /// Quantum floor (also the initial quantum at admission, until the
        /// first recompute — which happens in the same event).
        base: SimDuration,
    },
}

/// How a job's processes are laid out over its partition's processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Rank `r` on processor `base + ((r + j) mod p)` where `j` is the
    /// job's admission index: consecutive ranks land on consecutive
    /// processors and *different jobs' coordinators land on different
    /// processors*, spreading memory and traffic (ablation).
    Staggered,
    /// Rank `r` on processor `base + (r mod p)`: the natural static mapping
    /// — every job's coordinator (rank 0) on the partition's first node,
    /// which concentrates coordinator memory and traffic there under
    /// multiprogramming (the regime the paper's memory-contention
    /// discussion describes). The default.
    #[default]
    RoundRobin,
    /// Rank `r` on processor `base + floor(r * p / T)`: consecutive ranks
    /// cluster on the same processor (block mapping), staggered per job
    /// like [`Placement::Staggered`].
    Blocked,
}

impl Placement {
    /// Map every rank of a `width`-process job onto a partition of
    /// `size` processors starting at global index `base`. `job_index` is
    /// the job's admission index (used by the staggered mappings).
    pub fn assign(self, base: usize, size: usize, width: usize, job_index: usize) -> Vec<u32> {
        let nodes: Vec<u32> = (base..base + size).map(|n| n as u32).collect();
        self.assign_nodes(&nodes, width, job_index)
    }

    /// Map every rank onto an explicit processor list (the surviving nodes
    /// of a partition after faults). With the full contiguous list this is
    /// exactly [`Placement::assign`]; with a shorter list the same mapping
    /// formulas apply over the remaining processors in order.
    pub fn assign_nodes(self, nodes: &[u32], width: usize, job_index: usize) -> Vec<u32> {
        let size = nodes.len();
        assert!(size >= 1);
        (0..width)
            .map(|r| {
                let off = match self {
                    Placement::Staggered => (r + job_index) % size,
                    Placement::RoundRobin => r % size,
                    Placement::Blocked => (r * size / width + job_index) % size,
                };
                nodes[off]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_job_quantum_formula() {
        let rule = QuantumRule::RrJob {
            base: SimDuration::from_millis(2),
        };
        // Adaptive architecture (T = p): always the basic quantum.
        assert_eq!(rule.quantum(16, 16), SimDuration::from_millis(2));
        assert_eq!(rule.quantum(4, 4), SimDuration::from_millis(2));
        // Fixed architecture (T = 16) on a 4-processor partition: clamped
        // to the hardware quantum.
        assert_eq!(rule.quantum(4, 16), SimDuration::from_millis(2));
        // A one-process job on a 16-processor partition: 32 ms.
        assert_eq!(rule.quantum(16, 1), SimDuration::from_millis(32));
    }

    #[test]
    fn rr_job_quantum_never_zero() {
        let rule = QuantumRule::RrJob {
            base: SimDuration::from_nanos(1),
        };
        assert!(rule.quantum(1, 16) > SimDuration::ZERO);
    }

    #[test]
    fn rr_process_is_constant() {
        let rule = QuantumRule::RrProcess {
            quantum: SimDuration::from_millis(2),
        };
        assert_eq!(rule.quantum(4, 16), SimDuration::from_millis(2));
        assert_eq!(rule.quantum(16, 1), SimDuration::from_millis(2));
    }

    #[test]
    fn round_robin_placement() {
        let p = Placement::RoundRobin.assign(8, 4, 6, 3);
        assert_eq!(p, vec![8, 9, 10, 11, 8, 9]);
    }

    #[test]
    fn blocked_placement() {
        let p = Placement::Blocked.assign(0, 4, 8, 0);
        assert_eq!(p, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn staggered_moves_coordinators_apart() {
        let a = Placement::Staggered.assign(0, 4, 4, 0);
        let b = Placement::Staggered.assign(0, 4, 4, 1);
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![1, 2, 3, 0]);
    }

    #[test]
    fn one_processor_partition_takes_everything() {
        for placement in [Placement::Staggered, Placement::RoundRobin, Placement::Blocked] {
            let p = placement.assign(5, 1, 16, 7);
            assert_eq!(p, vec![5; 16]);
        }
    }

    #[test]
    fn adaptive_one_to_one() {
        let p = Placement::RoundRobin.assign(4, 4, 4, 9);
        assert_eq!(p, vec![4, 5, 6, 7]);
    }

    #[test]
    fn assign_nodes_skips_dead_processors() {
        // Partition [8..12) with node 9 dead: ranks wrap over the survivors.
        let p = Placement::RoundRobin.assign_nodes(&[8, 10, 11], 6, 3);
        assert_eq!(p, vec![8, 10, 11, 8, 10, 11]);
        let s = Placement::Staggered.assign_nodes(&[8, 10, 11], 3, 1);
        assert_eq!(s, vec![10, 11, 8]);
    }

    #[test]
    fn assign_nodes_matches_assign_on_full_partition() {
        let nodes: Vec<u32> = (8..12).collect();
        for placement in [Placement::Staggered, Placement::RoundRobin, Placement::Blocked] {
            for width in [1, 4, 6, 16] {
                for j in 0..5 {
                    assert_eq!(
                        placement.assign(8, 4, width, j),
                        placement.assign_nodes(&nodes, width, j),
                    );
                }
            }
        }
    }
}
