//! Report formatting: the rows/series the paper's figures plot, as text
//! tables and CSV.

use std::fmt::Write as _;

/// One row of a figure: a configuration label and its per-policy means.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// X-axis label (e.g. `8L`, `cv=2`).
    pub label: String,
    /// Static policy mean response (seconds), when the figure has one.
    pub static_mean: Option<f64>,
    /// Time-sharing mean response (seconds), when the figure has one.
    pub ts_mean: Option<f64>,
    /// Additional pre-formatted columns.
    pub extra: Vec<String>,
}

impl FigureRow {
    /// The row's values in column order (static, ts, extras), skipping the
    /// columns this figure does not have.
    pub fn values(&self) -> Vec<String> {
        let mut v = Vec::new();
        if let Some(s) = self.static_mean {
            v.push(format!("{s:.3}"));
        }
        if let Some(t) = self.ts_mean {
            v.push(format!("{t:.3}"));
        }
        v.extend(self.extra.iter().cloned());
        v
    }
}

/// A complete figure: title, column headers and rows.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure caption.
    pub title: String,
    /// Column headers (excluding the label column).
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["config".len()])
            .max()
            .unwrap_or(6);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, v) in row.values().iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(v.len());
                }
            }
        }
        let _ = write!(out, "{:<label_w$}", "config");
        for (c, w) in self.columns.iter().zip(&widths) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        let total = label_w + widths.iter().map(|w| w + 2).sum::<usize>();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = write!(out, "{:<label_w$}", row.label);
            for (v, w) in row.values().iter().zip(&widths) {
                let _ = write!(out, "  {v:>w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV (label column first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "config");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{}", row.label);
            for v in row.values() {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The ratio of time-sharing to static mean per row, for rows that
    /// have both (shape checking in tests and EXPERIMENTS.md).
    pub fn ts_over_static(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .filter_map(|r| match (r.static_mean, r.ts_mean) {
                (Some(s), Some(t)) if s > 0.0 => Some((r.label.clone(), t / s)),
                _ => None,
            })
            .collect()
    }

    /// Look up a row by label.
    pub fn row(&self, label: &str) -> Option<&FigureRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = write!(out, "| config |");
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} |", row.label);
            for v in row.values() {
                let _ = write!(out, " {v} |");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Render a [`parsched_obs::MetricsRegistry`] as a [`FigureTable`]: one row
/// per gauge (time-weighted mean, peak, last value) followed by one row per
/// counter. The same table renders to text for the console and CSV for
/// files, like every other report in this module.
pub fn metrics_table(registry: &parsched_obs::MetricsRegistry, title: &str) -> FigureTable {
    let mut rows = Vec::new();
    for (name, id) in registry.gauges() {
        rows.push(FigureRow {
            label: name.to_string(),
            static_mean: None,
            ts_mean: None,
            extra: vec![
                "gauge".into(),
                format!("{:.9}", registry.mean(id)),
                format!("{}", registry.peak(id)),
                format!("{}", registry.value(id)),
            ],
        });
    }
    for (name, value) in registry.counters() {
        rows.push(FigureRow {
            label: name.to_string(),
            static_mean: None,
            ts_mean: None,
            extra: vec!["counter".into(), String::new(), String::new(), format!("{value}")],
        });
    }
    FigureTable {
        title: title.to_string(),
        columns: vec!["kind".into(), "mean".into(), "peak".into(), "last".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        FigureTable {
            title: "demo".into(),
            columns: vec!["static".into(), "ts".into()],
            rows: vec![
                FigureRow {
                    label: "1".into(),
                    static_mean: Some(1.0),
                    ts_mean: Some(1.0),
                    extra: Vec::new(),
                },
                FigureRow {
                    label: "16L".into(),
                    static_mean: Some(2.0),
                    ts_mean: Some(6.0),
                    extra: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn text_table_is_aligned() {
        let t = sample().to_text();
        assert!(t.contains("demo"));
        assert!(t.contains("config"));
        assert!(t.contains("16L"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn csv_round_numbers() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "config,static,ts");
        assert_eq!(lines[1], "1,1.000,1.000");
        assert_eq!(lines[2], "16L,2.000,6.000");
    }

    #[test]
    fn ratios() {
        let r = sample().ts_over_static();
        assert_eq!(r.len(), 2);
        assert!((r[1].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn markdown_table_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("**demo**"));
        assert_eq!(lines[2], "| config | static | ts |");
        assert_eq!(lines[3], "|---|---|---|");
        assert_eq!(lines[4], "| 1 | 1.000 | 1.000 |");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn row_lookup() {
        let t = sample();
        assert!(t.row("16L").is_some());
        assert!(t.row("8H").is_none());
    }

    #[test]
    fn metrics_table_has_gauge_and_counter_rows() {
        use parsched_des::SimTime;
        let mut reg = parsched_obs::MetricsRegistry::new(SimTime::ZERO);
        let g = reg.gauge("node0.cpu_busy", 0.0);
        let c = reg.counter("msgs");
        reg.set(g, SimTime::ZERO, 1.0);
        reg.inc(c, 3);
        reg.finish(SimTime(100));
        let t = metrics_table(&reg, "demo metrics");
        assert_eq!(t.columns, vec!["kind", "mean", "peak", "last"]);
        let busy = t.row("node0.cpu_busy").expect("gauge row");
        assert_eq!(busy.extra[0], "gauge");
        assert_eq!(busy.extra[1], "1.000000000");
        let msgs = t.row("msgs").expect("counter row");
        assert_eq!(msgs.extra[0], "counter");
        assert_eq!(msgs.extra[3], "3");
        assert!(t.to_csv().contains("node0.cpu_busy,gauge,1.000000000,1,1"));
    }
}
