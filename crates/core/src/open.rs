//! The open-system front door: arrival streams driving the live scheduler.
//!
//! The paper evaluates its policies on *closed* batches (everything arrives
//! at t = 0 and the score is the batch's mean response time). The companion
//! reports it cites — and the broader dynamic-quantum literature — work in
//! the *open* setting instead: jobs arrive over time from an external
//! source at offered load ρ, and the interesting quantities are the
//! steady-state response-time and slowdown distributions as ρ climbs
//! toward saturation. This module provides that front door on top of the
//! unchanged [`Driver`]:
//!
//! * [`run_open_system`] injects a Poisson stream of synthetic fork-join
//!   jobs (demands from a configurable [`DemandSpec`]) into one machine and
//!   reports warm-up-truncated response/slowdown statistics;
//! * [`run_open_stream`] is the trace-level variant: explicit arrival
//!   instants and demands, for differential testing and replay;
//! * [`sweep_load`] runs a ρ grid with common random numbers (the same
//!   demand stream at every load point) and tabulates the curves.
//!
//! Everything is driven by the in-tree deterministic RNG: the same seed
//! replays the same arrivals, the same demands, and therefore the same
//! simulation, event for event, on any engine backend.

use crate::driver::{Driver, EntryRecord};
use crate::experiment::{ExperimentConfig, RunError};
use crate::policy::PolicyKind;
use parsched_arrivals::{
    mean_interarrival_for_load, ArrivalProcess, BoundedParetoDemand, ExponentialDemand,
    HyperexponentialDemand, PoissonArrivals, ServiceDemand,
};
use parsched_des::rng::DetRng;
use parsched_des::stats::percentile;
use parsched_des::{Engine, RunOutcome, SimDuration, SimTime};
use parsched_machine::{Event, Machine, SystemNet};
use parsched_workload::cost::CostModel;
use parsched_workload::synthetic::{synthetic_job, SyntheticParams};
use std::fmt::Write as _;

/// Service-demand distribution for the open stream, rebuildable from a
/// seed so a load sweep can reuse the identical demand sequence at every
/// ρ (common random numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandSpec {
    /// Exponential demand (CV 1, the classic M/M baseline).
    Exponential {
        /// Mean sequential demand.
        mean: SimDuration,
    },
    /// Bounded Pareto demand (the heavy-tailed regime where dynamic
    /// quanta and time-sharing earn their keep).
    BoundedPareto {
        /// Tail index (heavier tail as it approaches 1).
        alpha: f64,
        /// Smallest demand.
        lo: SimDuration,
        /// Largest demand (truncation point).
        hi: SimDuration,
    },
    /// Two-phase hyperexponential demand with a chosen CV ≥ 1.
    Hyperexponential {
        /// Mean sequential demand.
        mean: SimDuration,
        /// Coefficient of variation (≥ 1).
        cv: f64,
    },
}

impl DemandSpec {
    /// Build the sampler on its own RNG substream.
    pub fn sampler(self, rng: DetRng) -> Box<dyn ServiceDemand> {
        match self {
            DemandSpec::Exponential { mean } => Box::new(ExponentialDemand::new(mean, rng)),
            DemandSpec::BoundedPareto { alpha, lo, hi } => {
                Box::new(BoundedParetoDemand::new(alpha, lo, hi, rng))
            }
            DemandSpec::Hyperexponential { mean, cv } => {
                Box::new(HyperexponentialDemand::new(mean, cv, rng))
            }
        }
    }

    /// The distribution's analytic mean (used to convert ρ to a rate).
    pub fn mean(self) -> SimDuration {
        match self {
            DemandSpec::Exponential { mean } => mean,
            DemandSpec::BoundedPareto { alpha, lo, hi } => {
                // Delegate to the sampler's closed form (the RNG is unused
                // for the mean).
                BoundedParetoDemand::new(alpha, lo, hi, DetRng::new(0)).mean()
            }
            DemandSpec::Hyperexponential { mean, .. } => mean,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DemandSpec::Exponential { .. } => "exp",
            DemandSpec::BoundedPareto { .. } => "pareto",
            DemandSpec::Hyperexponential { .. } => "hyperexp",
        }
    }
}

/// When an open run stops injecting and winds down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Inject warm-up + this many measured jobs, then run until every
    /// injected job departs (the measured sample is complete).
    Completions(usize),
    /// Inject every arrival before the horizon and stop the clock there;
    /// jobs still in the system at the horizon are reported unfinished.
    Horizon(SimTime),
}

/// Configuration of one open-system run.
#[derive(Debug, Clone)]
pub struct OpenConfig {
    /// Machine/policy configuration (the closed-batch experiment config,
    /// reused unchanged).
    pub experiment: ExperimentConfig,
    /// Fork-join shape of the injected jobs (`mean_demand`/`cv` are
    /// ignored; demand comes from [`OpenConfig::demand`]).
    pub params: SyntheticParams,
    /// Service-demand distribution.
    pub demand: DemandSpec,
    /// Completed jobs discarded from the front of the sample (warm-up
    /// truncation — the empty-system start biases early response times
    /// down).
    pub warmup: usize,
    /// Stopping rule.
    pub stop: StopRule,
    /// Master seed for the arrival and demand streams.
    pub seed: u64,
}

impl OpenConfig {
    /// A small open-system config over the given experiment config:
    /// exponential demands, 4-wide jobs, a modest measured sample.
    pub fn new(experiment: ExperimentConfig, seed: u64) -> OpenConfig {
        OpenConfig {
            experiment,
            params: SyntheticParams {
                mean_demand: SimDuration::from_millis(200),
                cv: 1.0,
                width: 4,
                msg_bytes: 1024,
                mem_per_proc: 4 * 1024,
            },
            demand: DemandSpec::Exponential {
                mean: SimDuration::from_millis(200),
            },
            warmup: 20,
            stop: StopRule::Completions(100),
            seed,
        }
    }
}

/// One measured job of an open run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenJobRecord {
    /// Submission index.
    pub index: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Departure instant (`None` if still in the system at the horizon).
    pub finished: Option<SimTime>,
    /// The job's sequential demand (the slowdown denominator).
    pub demand: SimDuration,
    /// Response time (departure − arrival), when finished.
    pub response: Option<SimDuration>,
}

impl OpenJobRecord {
    /// Slowdown = response / sequential demand (`None` while unfinished).
    pub fn slowdown(&self) -> Option<f64> {
        self.response
            .map(|r| r.as_secs_f64() / self.demand.as_secs_f64().max(f64::MIN_POSITIVE))
    }
}

/// Mean and tail statistics of one metric over the measured sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailStats {
    /// Sample mean.
    pub mean: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl TailStats {
    fn of(xs: &[f64]) -> Option<TailStats> {
        if xs.is_empty() {
            return None;
        }
        Some(TailStats {
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            p95: percentile(xs, 0.95).expect("non-empty"),
            p99: percentile(xs, 0.99).expect("non-empty"),
        })
    }
}

/// Outcome of one open-system run.
#[derive(Debug, Clone)]
pub struct OpenRunResult {
    /// Per-job records in submission order (warm-up jobs included, flagged
    /// by index < warmup).
    pub records: Vec<OpenJobRecord>,
    /// Jobs past warm-up that finished (the measured sample size).
    pub measured: usize,
    /// Jobs still in the system when the run stopped (0 under
    /// [`StopRule::Completions`]).
    pub unfinished: usize,
    /// Response-time statistics (seconds) over the measured sample.
    pub response: Option<TailStats>,
    /// Slowdown statistics over the measured sample.
    pub slowdown: Option<TailStats>,
    /// Final simulated time.
    pub end: SimTime,
}

/// Run an open stream of synthetic fork-join jobs: Poisson arrivals at
/// offered load `rho` (per-processor utilization demanded of the whole
/// machine), demands from the configured [`DemandSpec`]. Deterministic in
/// `config.seed`.
pub fn run_open_system(config: &OpenConfig, rho: f64) -> Result<OpenRunResult, RunError> {
    assert!(rho > 0.0, "offered load must be positive");
    let mean_ia =
        mean_interarrival_for_load(rho, config.demand.mean(), config.experiment.system_size);
    let master = DetRng::new(config.seed);
    let mut arrivals = PoissonArrivals::new(mean_ia, master.substream("open.arrivals"));
    let mut demand = config.demand.sampler(master.substream("open.demand"));
    let (times, demands) = match config.stop {
        StopRule::Completions(n) => {
            let count = config.warmup + n;
            let times = arrivals.take_arrivals(count);
            let demands: Vec<SimDuration> = (0..count).map(|_| demand.sample()).collect();
            (times, demands)
        }
        StopRule::Horizon(t) => {
            let mut times = Vec::new();
            let mut demands = Vec::new();
            while let Some(at) = arrivals.next_arrival() {
                if at > t {
                    break;
                }
                times.push(at);
                demands.push(demand.sample());
            }
            (times, demands)
        }
    };
    run_open_stream(config, times, demands)
}

/// Trace-level open run: explicit arrival instants (nondecreasing) and
/// sequential demands, one per job. This is the replayable core that
/// [`run_open_system`] samples its streams into; the differential oracle
/// calls it directly.
pub fn run_open_stream(
    config: &OpenConfig,
    times: Vec<SimTime>,
    demands: Vec<SimDuration>,
) -> Result<OpenRunResult, RunError> {
    assert_eq!(times.len(), demands.len(), "one demand per arrival");
    let cfg = &config.experiment;
    let plan = cfg
        .try_plan()
        .map_err(|e| RunError::aborted(format!("unrealizable configuration {}: {e}", cfg.label())))?;
    let cost = CostModel::default();
    // Floor at one hardware quantum so every job is real work; the floored
    // value is also the slowdown denominator (the demand actually
    // injected), so a micro-draw from a long-tailed sampler cannot
    // manufacture a thousand-fold slowdown out of a sub-quantum job.
    let demands: Vec<SimDuration> = demands
        .into_iter()
        .map(|d| d.max(SimDuration::from_millis(2)))
        .collect();
    let batch = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| synthetic_job(format!("open{i}"), d, &config.params, &cost))
        .collect();
    let machine = Machine::new(cfg.machine.clone(), SystemNet::from_plan(&plan));
    let mut driver = Driver::new(machine, plan, cfg.policy, cfg.rule, cfg.placement, batch)
        .with_discipline(cfg.discipline)
        .with_arrivals(times.clone());
    if let Some(mpl) = cfg.mpl {
        driver = driver.with_mpl(mpl);
    }
    let mut engine: Engine<Event> = Engine::new(cfg.queue);
    engine.max_events = cfg.machine.max_events;
    if let StopRule::Horizon(t) = config.stop {
        engine.horizon = t;
    }
    driver.start(&mut engine);
    let outcome = engine.run(&mut driver);
    let complete = match config.stop {
        StopRule::Completions(_) => outcome == RunOutcome::Drained && driver.all_done(),
        StopRule::Horizon(_) => {
            matches!(outcome, RunOutcome::Drained | RunOutcome::HorizonReached)
        }
    };
    if !complete {
        return Err(RunError {
            outcome: Some(outcome),
            diagnosis: driver.diagnose(),
        });
    }
    let records: Vec<OpenJobRecord> = driver
        .entry_records()
        .iter()
        .zip(&demands)
        .enumerate()
        .map(|(index, (e, &demand))| record_of(index, e, demand))
        .collect();
    Ok(summarize(config.warmup, records, engine.now()))
}

fn record_of(index: usize, e: &EntryRecord, demand: SimDuration) -> OpenJobRecord {
    OpenJobRecord {
        index,
        arrival: e.arrival,
        finished: e.finished,
        demand,
        response: e.finished.map(|f| f.since(e.arrival)),
    }
}

fn summarize(warmup: usize, records: Vec<OpenJobRecord>, end: SimTime) -> OpenRunResult {
    let measured: Vec<&OpenJobRecord> = records
        .iter()
        .filter(|r| r.index >= warmup && r.finished.is_some())
        .collect();
    let unfinished = records.iter().filter(|r| r.finished.is_none()).count();
    let responses: Vec<f64> = measured
        .iter()
        .map(|r| r.response.expect("filtered").as_secs_f64())
        .collect();
    let slowdowns: Vec<f64> = measured
        .iter()
        .map(|r| r.slowdown().expect("filtered"))
        .collect();
    OpenRunResult {
        measured: measured.len(),
        unfinished,
        response: TailStats::of(&responses),
        slowdown: TailStats::of(&slowdowns),
        records,
        end,
    }
}

/// One row of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load ρ.
    pub rho: f64,
    /// Measured completions behind the statistics.
    pub measured: usize,
    /// Jobs unfinished at the stop point.
    pub unfinished: usize,
    /// Response-time statistics (seconds).
    pub response: Option<TailStats>,
    /// Slowdown statistics.
    pub slowdown: Option<TailStats>,
}

/// A ρ grid's response/slowdown curves for one configuration.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Configuration label (partitioning + policy + demand).
    pub label: String,
    /// One point per requested ρ, in order.
    pub points: Vec<LoadPoint>,
}

impl LoadSweep {
    /// Render as a fixed-width text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.label);
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rho", "done", "left", "mean(s)", "p95(s)", "p99(s)", "slowdown", "sd-p95", "sd-p99"
        );
        for p in &self.points {
            let r = p.response;
            let s = p.slowdown;
            let cell = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:>6.2} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                p.rho,
                p.measured,
                p.unfinished,
                cell(r.map(|t| t.mean)),
                cell(r.map(|t| t.p95)),
                cell(r.map(|t| t.p99)),
                cell(s.map(|t| t.mean)),
                cell(s.map(|t| t.p95)),
                cell(s.map(|t| t.p99)),
            );
        }
        out
    }

    /// Mean response times in ρ order (`None` where a point measured
    /// nothing) — the monotonicity acceptance check reads this.
    pub fn mean_responses(&self) -> Vec<Option<f64>> {
        self.points
            .iter()
            .map(|p| p.response.map(|t| t.mean))
            .collect()
    }
}

/// Run the same open config across a ρ grid with common random numbers:
/// every load point replays the identical demand sequence, so the curves
/// differ only through the arrival rate (and the arrival stream's own
/// thinning), not through sampling noise.
pub fn sweep_load(config: &OpenConfig, rhos: &[f64]) -> Result<LoadSweep, RunError> {
    let mut points = Vec::with_capacity(rhos.len());
    for &rho in rhos {
        let r = run_open_system(config, rho)?;
        points.push(LoadPoint {
            rho,
            measured: r.measured,
            unfinished: r.unfinished,
            response: r.response,
            slowdown: r.slowdown,
        });
    }
    let discipline = match config.experiment.discipline {
        crate::policy::Discipline::Uncoordinated => "",
        crate::policy::Discipline::Gang { .. } => " gang",
        crate::policy::Discipline::DynamicQuantum { .. } => " dynq",
    };
    Ok(LoadSweep {
        label: format!(
            "{} {}{} {} demand",
            config.experiment.label(),
            config.experiment.policy.label(),
            discipline,
            config.demand.label()
        ),
        points,
    })
}

/// The policy label a sweep row reports (exposed for the bench binary).
pub fn policy_label(policy: PolicyKind) -> &'static str {
    policy.label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Discipline;
    use parsched_topology::TopologyKind;

    /// A small, fast open config: 4 single-node partitions, light jobs.
    fn quick(policy: PolicyKind) -> OpenConfig {
        let mut exp = ExperimentConfig::paper(1, TopologyKind::Linear, policy);
        exp.system_size = 4;
        exp.machine.job_load_latency = SimDuration::from_millis(1);
        exp.machine.host_link_per_byte = SimDuration::ZERO;
        let mut cfg = OpenConfig::new(exp, 0xBEEF);
        cfg.params.width = 1;
        cfg.params.mean_demand = SimDuration::from_millis(20);
        cfg.demand = DemandSpec::Exponential {
            mean: SimDuration::from_millis(20),
        };
        cfg.warmup = 10;
        cfg.stop = StopRule::Completions(60);
        cfg
    }

    #[test]
    fn open_run_completes_and_measures() {
        let r = run_open_system(&quick(PolicyKind::TimeSharing), 0.5).unwrap();
        assert_eq!(r.measured, 60);
        assert_eq!(r.unfinished, 0);
        let resp = r.response.expect("measured jobs");
        assert!(resp.mean > 0.0);
        assert!(resp.p95 >= resp.mean * 0.5);
        assert!(resp.p99 >= resp.p95);
        let sd = r.slowdown.expect("measured jobs");
        assert!(sd.mean >= 1.0, "slowdown below 1: {}", sd.mean);
    }

    #[test]
    fn open_run_replays_bit_identically() {
        let cfg = quick(PolicyKind::TimeSharing);
        let a = run_open_system(&cfg, 0.7).unwrap();
        let b = run_open_system(&cfg, 0.7).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn horizon_stop_reports_unfinished() {
        let mut cfg = quick(PolicyKind::TimeSharing);
        cfg.stop = StopRule::Horizon(SimTime::ZERO + SimDuration::from_millis(400));
        let r = run_open_system(&cfg, 0.9).unwrap();
        assert!(r.end <= SimTime::ZERO + SimDuration::from_millis(400));
        // At ρ 0.9 something is almost surely mid-service at the cut.
        assert!(!r.records.is_empty());
        for rec in &r.records {
            if let Some(f) = rec.finished {
                assert!(f >= rec.arrival);
            }
        }
    }

    #[test]
    fn mean_response_grows_with_load() {
        let cfg = quick(PolicyKind::TimeSharing);
        let sweep = sweep_load(&cfg, &[0.3, 0.6, 0.9]).unwrap();
        let means: Vec<f64> = sweep
            .mean_responses()
            .into_iter()
            .map(|m| m.expect("all points measured"))
            .collect();
        assert!(
            means[0] <= means[1] && means[1] <= means[2],
            "mean response not monotone in rho: {means:?}"
        );
        let text = sweep.to_text();
        assert!(text.contains("rho"), "{text}");
    }

    #[test]
    fn dynamic_quantum_open_run_completes() {
        let mut cfg = quick(PolicyKind::TimeSharing);
        cfg.experiment.discipline = Discipline::DynamicQuantum {
            base: SimDuration::from_millis(2),
        };
        let r = run_open_system(&cfg, 0.6).unwrap();
        assert_eq!(r.measured, 60);
        // Same seed replays identically under the dynamic discipline too.
        let again = run_open_system(&cfg, 0.6).unwrap();
        assert_eq!(r.records, again.records);
    }

    #[test]
    fn heavy_tail_demands_run_to_completion() {
        let mut cfg = quick(PolicyKind::TimeSharing);
        cfg.demand = DemandSpec::BoundedPareto {
            alpha: 1.5,
            lo: SimDuration::from_millis(4),
            hi: SimDuration::from_secs(2),
        };
        cfg.stop = StopRule::Completions(40);
        let r = run_open_system(&cfg, 0.5).unwrap();
        assert_eq!(r.measured, 40);
        let sd = r.slowdown.expect("measured");
        assert!(sd.p99 >= sd.mean);
    }
}
