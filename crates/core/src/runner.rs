//! Parallel experiment execution.
//!
//! Every run is an independent single-threaded simulation, so a figure's
//! configuration grid parallelizes embarrassingly: workers pull (config,
//! batch) tasks off a shared atomic cursor and post results back over an
//! `std::sync::mpsc` channel, tagged with their input index so the caller
//! reassembles them in input order. Determinism is structural: each task's
//! outcome is a pure function of its own `ExperimentConfig` (which carries
//! any seed) and batch, so neither the number of workers nor the order in
//! which they steal tasks can perturb a result — `parallel == serial`,
//! element for element.

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult, RunError};
use parsched_machine::JobSpec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run task `i`, converting a panic into a [`RunError`] naming the task
/// so one poisoned configuration fails its grid cleanly instead of
/// aborting the process (serial path) or killing a worker (parallel path).
fn run_one(
    i: usize,
    cfg: &ExperimentConfig,
    batch: &[JobSpec],
) -> Result<ExperimentResult, RunError> {
    catch_unwind(AssertUnwindSafe(|| run_experiment(cfg, batch)))
        .unwrap_or_else(|payload| Err(RunError::panicked(i, payload.as_ref())))
}

/// Run every (config, batch) task and return results in input order.
/// `parallel = false` runs inline (useful under benchmark harnesses that
/// already saturate the machine).
pub fn run_parallel(
    tasks: Vec<(ExperimentConfig, Vec<JobSpec>)>,
    parallel: bool,
) -> Result<Vec<ExperimentResult>, RunError> {
    if !parallel || tasks.len() <= 1 {
        return tasks
            .iter()
            .enumerate()
            .map(|(i, (cfg, batch))| run_one(i, cfg, batch))
            .collect();
    }
    let n = tasks.len();
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4)
        .min(n);
    let cursor = AtomicUsize::new(0);
    // Raised by the first worker whose run fails; the others stop pulling
    // tasks instead of burning CPU on results the caller will discard.
    let cancelled = AtomicBool::new(false);
    let (res_tx, res_rx) = mpsc::channel::<(usize, Result<ExperimentResult, RunError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            let cursor = &cursor;
            let cancelled = &cancelled;
            let tasks = &tasks;
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((cfg, batch)) = tasks.get(i) else {
                    return;
                };
                let r = run_one(i, cfg, batch);
                if r.is_err() {
                    cancelled.store(true, Ordering::Relaxed);
                }
                if res_tx.send((i, r)).is_err() {
                    return;
                }
            });
        }
        drop(res_tx);
        let mut out: Vec<Option<ExperimentResult>> = (0..n).map(|_| None).collect();
        // "First" by input index, not by channel arrival: when several
        // workers fail near-simultaneously the winner of the send race is
        // scheduler-dependent, and an error that moves between runs of the
        // same grid is useless for triage. Keeping the lowest index makes
        // the surfaced error the one the serial path would have hit.
        let mut first_err: Option<(usize, RunError)> = None;
        for (i, r) in res_rx.iter() {
            match r {
                Ok(res) => out[i] = Some(res),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|&(j, _)| i < j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        // Every slot must be filled: the cursor hands each index to exactly
        // one worker and run_one turns even a panic into a posted error. A
        // hole means a worker died anyway — report which task, don't abort.
        out.into_iter()
            .enumerate()
            .map(|(i, o)| o.ok_or_else(|| RunError::lost(i)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use parsched_des::SimDuration;
    use parsched_machine::{Op, ProcSpec};
    use parsched_topology::TopologyKind;

    fn task(ms: u64) -> (ExperimentConfig, Vec<JobSpec>) {
        let cfg = ExperimentConfig {
            system_size: 2,
            ..ExperimentConfig::paper(1, TopologyKind::Linear, PolicyKind::Static)
        };
        let batch = vec![JobSpec {
            name: format!("j{ms}"),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(SimDuration::from_millis(ms))],
                mem_bytes: 0,
            }],
        }];
        (cfg, batch)
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let tasks: Vec<_> = (1..=8).map(|i| task(i * 10)).collect();
        let serial = run_parallel(tasks.clone(), false).unwrap();
        let parallel = run_parallel(tasks, true).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.mean_response, p.mean_response);
            assert_eq!(s.label, p.label);
        }
    }

    #[test]
    fn empty_task_list() {
        assert!(run_parallel(Vec::new(), true).unwrap().is_empty());
    }

    #[test]
    fn first_failure_propagates_and_cancels() {
        // One task with an absurd event budget fails fast; its error must
        // surface (and flip the cancel flag so the fleet stops early —
        // best-effort, so only the error itself is asserted).
        let mut tasks: Vec<_> = (1..=6).map(|i| task(i * 10)).collect();
        let mut poisoned = task(10);
        poisoned.0.machine.max_events = 1;
        tasks.insert(1, poisoned);
        let err = run_parallel(tasks, true).unwrap_err();
        assert!(
            format!("{err}").contains("BudgetExhausted"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn panicking_task_yields_error_naming_the_task() {
        // A job demanding more memory than a node has trips the machine's
        // internal "usable" invariant — a panic, not a RunError. The runner
        // must catch it and name the offending task instead of aborting.
        let mut tasks: Vec<_> = (1..=4).map(|i| task(i * 10)).collect();
        let mut bomb = task(10);
        bomb.1[0].procs[0].mem_bytes = u64::MAX;
        tasks.insert(2, bomb);
        for parallel in [false, true] {
            let err = run_parallel(tasks.clone(), parallel).unwrap_err();
            assert!(
                format!("{err}").contains("task 2 panicked"),
                "unexpected error: {err}"
            );
        }
    }

    /// A task's batch with `jobs` one-job clones, poisoned to fail fast.
    fn poisoned(jobs: usize) -> (ExperimentConfig, Vec<JobSpec>) {
        let (mut cfg, batch) = task(10);
        cfg.machine.max_events = 1;
        (cfg, vec![batch[0].clone(); jobs])
    }

    #[test]
    fn earliest_failure_wins_regardless_of_completion_order() {
        // Two failing tasks whose diagnoses differ by job count; whichever
        // worker's error reaches the channel first, the surfaced error must
        // be the lower-index one — the same one the serial path would hit.
        // Repeated to give the send race room to go both ways.
        for _ in 0..20 {
            let mut tasks: Vec<_> = (1..=6).map(|i| task(i * 10)).collect();
            tasks.insert(1, poisoned(2));
            tasks.push(poisoned(3));
            let err = run_parallel(tasks, true).unwrap_err();
            assert!(
                format!("{err}").contains("2 unfinished of 2 jobs"),
                "error from the wrong task surfaced: {err}"
            );
        }
    }
}
