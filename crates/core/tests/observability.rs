//! The observability layer's two hard guarantees, checked end-to-end:
//!
//! 1. **Determinism** — instrumentation observes and never perturbs: an
//!    instrumented run is bit-identical to an uninstrumented run of the
//!    same configuration, event for event and bit for bit.
//! 2. **Conservation** — each node's CPU busy and idle gauges are exact
//!    complements, so their time integrals sum to the run span *exactly*
//!    (0/1 gauges times integer-nanosecond durations stay exact in f64
//!    well past any simulated makespan).

use parsched_core::prelude::*;
use parsched_machine::JobSpec;
use parsched_obs::ObsEvent;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;

fn paper_16h(policy: PolicyKind) -> (ExperimentConfig, Vec<JobSpec>) {
    let config = ExperimentConfig::paper(16, TopologyKind::Hypercube { dim: 0 }, policy);
    let batch = order_batch(
        paper_batch(
            App::MatMul,
            Arch::Fixed,
            16,
            &BatchSizes::default(),
            &CostModel::default(),
        ),
        BatchOrder::SmallestFirst,
    );
    (config, batch)
}

#[test]
fn instrumented_run_is_bit_identical() {
    for policy in [PolicyKind::TimeSharing, PolicyKind::Static] {
        let (config, batch) = paper_16h(policy);
        let plain = run_batch(&config, batch.clone()).expect("uninstrumented run");
        let (observed, obs) = run_batch_observed(&config, batch).expect("instrumented run");
        assert_eq!(plain.response_times, observed.response_times);
        assert_eq!(plain.makespan, observed.makespan);
        assert_eq!(plain.events, observed.events);
        assert_eq!(
            plain.summary.mean.to_bits(),
            observed.summary.mean.to_bits(),
            "instrumentation perturbed the simulated mean under {policy:?}"
        );
        assert!(!obs.events.is_empty());
        assert_eq!(obs.dropped, 0);
    }
}

#[test]
fn per_node_busy_plus_idle_equals_run_span() {
    // 4-node partitions of the hypercube so the batch messages across
    // links while several partitions run concurrently.
    let config = ExperimentConfig::paper(
        4,
        TopologyKind::Hypercube { dim: 0 },
        PolicyKind::TimeSharing,
    );
    let batch = paper_batch(
        App::MatMul,
        Arch::Fixed,
        4,
        &BatchSizes::default(),
        &CostModel::default(),
    );
    let (result, obs) = run_batch_observed(&config, batch).expect("instrumented run");
    let span = result.makespan.nanos() as f64;
    assert!(span > 0.0);
    let reg = &obs.metrics.registry;
    for node in 0..obs.layout.node_count {
        let busy = reg.integral_ns(obs.metrics.cpu_busy_id(node));
        let idle = reg.integral_ns(obs.metrics.cpu_idle_id(node));
        // Exact equality on purpose: both gauges step between 0.0 and 1.0
        // at integer-nanosecond instants, so the sum of the two integrals
        // is an exactly representable integer equal to the span.
        assert_eq!(
            busy + idle,
            span,
            "node {node}: busy {busy} + idle {idle} != span {span}"
        );
        assert!(busy > 0.0, "node {node} never ran anything");
    }
}

#[test]
fn event_stream_is_well_formed() {
    let (config, batch) = paper_16h(PolicyKind::TimeSharing);
    let jobs = batch.len() as u32;
    let (_, obs) = run_batch_observed(&config, batch).expect("instrumented run");
    // Timestamps never run backwards.
    for w in obs.events.windows(2) {
        assert!(w[0].0 <= w[1].0, "event stream out of order");
    }
    // Every job arrives, loads and finishes exactly once.
    let count = |f: &dyn Fn(&ObsEvent) -> bool| {
        obs.events.iter().filter(|(_, e)| f(e)).count() as u32
    };
    assert_eq!(count(&|e| matches!(e, ObsEvent::JobArrived { .. })), jobs);
    assert_eq!(count(&|e| matches!(e, ObsEvent::JobLoaded { .. })), jobs);
    assert_eq!(count(&|e| matches!(e, ObsEvent::JobFinished { .. })), jobs);
    // Under time-sharing every job is admitted to some partition.
    assert_eq!(count(&|e| matches!(e, ObsEvent::PartitionAdmit { .. })), jobs);
    // Message sends pair with deliveries, hops pair start/end.
    assert_eq!(
        count(&|e| matches!(e, ObsEvent::MsgSend { .. })),
        count(&|e| matches!(e, ObsEvent::MsgDeliver { .. })),
    );
    assert_eq!(
        count(&|e| matches!(e, ObsEvent::HopStart { .. })),
        count(&|e| matches!(e, ObsEvent::HopEnd { .. })),
    );
}
