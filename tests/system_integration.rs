//! Cross-crate integration tests: conservation laws, determinism, and
//! policy-mechanism interactions that no single crate can check alone.
#![allow(clippy::field_reassign_with_default)]

use parsched::machine::memory::AllocPolicy;
use parsched::prelude::*;

const MESH: TopologyKind = TopologyKind::Mesh { rows: 0, cols: 0 };

fn small_batch() -> Vec<JobSpec> {
    let cost = CostModel::default();
    let sizes = BatchSizes {
        jobs: 8,
        small_count: 6,
        ..BatchSizes::default()
    };
    paper_batch(App::MatMul, Arch::Adaptive, 8, &sizes, &cost)
}

/// Every run is bit-identical given the same inputs.
#[test]
fn experiments_are_deterministic() {
    let cfg = ExperimentConfig::paper(8, TopologyKind::Ring, PolicyKind::TimeSharing);
    let a = run_batch(&cfg, small_batch()).unwrap();
    let b = run_batch(&cfg, small_batch()).unwrap();
    assert_eq!(a.response_times, b.response_times);
    assert_eq!(a.events, b.events);
    assert_eq!(a.makespan, b.makespan);
}

/// The calendar-queue and binary-heap engines produce identical histories.
#[test]
fn engine_backends_are_equivalent() {
    let mut heap_cfg = ExperimentConfig::paper(8, MESH, PolicyKind::TimeSharing);
    heap_cfg.queue = QueueKind::BinaryHeap;
    let mut cal_cfg = heap_cfg.clone();
    cal_cfg.queue = QueueKind::Calendar;
    let heap = run_batch(&heap_cfg, small_batch()).unwrap();
    let cal = run_batch(&cal_cfg, small_batch()).unwrap();
    assert_eq!(heap.response_times, cal.response_times);
    assert_eq!(heap.events, cal.events);
}

/// Message conservation: everything sent is consumed, everything allocated
/// is freed, for every paper configuration of both applications.
#[test]
fn conservation_across_the_paper_grid() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    for app in [App::MatMul, App::Sort] {
        for arch in [Arch::Fixed, Arch::Adaptive] {
            for (p, kind) in paper_configs(false) {
                let batch = paper_batch(app, arch, p, &sizes, &cost);
                let expected_msgs: u64 = batch
                    .iter()
                    .map(|j| j.procs.iter().map(|pr| pr.send_count()).sum::<u64>())
                    .sum();
                for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
                    let cfg = ExperimentConfig::paper(p, kind, policy);
                    let r = run_batch(&cfg, batch.clone()).unwrap_or_else(|e| {
                        panic!("{app:?}/{arch:?}/{p}{} {policy:?}: {e}", kind.label())
                    });
                    let s = &r.stats;
                    assert_eq!(
                        s.messages_sent, expected_msgs,
                        "{app:?}/{arch:?}/{p}{}: sent",
                        kind.label()
                    );
                    assert_eq!(
                        s.messages_consumed, s.messages_sent,
                        "{app:?}/{arch:?}/{p}{}: consumed != sent",
                        kind.label()
                    );
                    assert_eq!(s.jobs_completed, batch.len() as u64);
                }
            }
        }
    }
}

/// After a complete run, all node memory has been returned (no leaks in
/// buffers, job data, or mailboxes), checked through the driver.
#[test]
fn memory_is_conserved_end_to_end() {
    let cost = CostModel::default();
    let batch: Vec<JobSpec> = (0..6)
        .map(|i| sort_job(format!("s{i}"), 4000 + i * 500, 8, &cost))
        .collect();
    let plan = PartitionPlan::equal(16, 8, TopologyKind::Ring).unwrap();
    let machine = parsched::machine::Machine::new(
        parsched::machine::MachineConfig::default(),
        parsched::machine::SystemNet::from_plan(&plan),
    );
    let mut driver = Driver::new(
        machine,
        plan,
        PolicyKind::TimeSharing,
        QuantumRule::default(),
        Placement::RoundRobin,
        batch,
    );
    let mut engine: Engine<parsched::machine::Event> = Engine::new(QueueKind::BinaryHeap);
    driver.start(&mut engine);
    assert_eq!(engine.run(&mut driver), RunOutcome::Drained);
    assert!(driver.all_done());
    for n in 0..driver.machine.node_count() {
        let node = driver.machine.node(n as u32);
        assert_eq!(node.mmu.used(), 0, "node {n} leaked memory");
        assert_eq!(node.mmu.queue_len(), 0, "node {n} has stranded requests");
        assert!(node.cpu.is_idle(), "node {n} CPU not idle at drain");
    }
}

/// Static policy truly space-shares: with one job per partition, no node
/// ever hosts processes from two live jobs at once — verified indirectly by
/// watching that a static run with equal-size jobs completes them in strict
/// partition batches.
#[test]
fn static_policy_runs_one_job_per_partition() {
    let cost = CostModel::default();
    // 8 identical jobs, 4 partitions: completions must come in two waves.
    let batch: Vec<JobSpec> = (0..8)
        .map(|i| matmul_job(format!("m{i}"), 64, 4, &cost))
        .collect();
    let mut cfg = ExperimentConfig::paper(4, TopologyKind::Ring, PolicyKind::Static);
    // Disable host-link serialization so the wave structure is pure
    // scheduling.
    cfg.machine.host_link_per_byte = SimDuration::ZERO;
    cfg.machine.job_load_latency = SimDuration::from_millis(1);
    let r = run_batch(&cfg, batch).unwrap();
    let mut rts: Vec<f64> = r.response_times.iter().map(|d| d.as_secs_f64()).collect();
    rts.sort_by(f64::total_cmp);
    // First four finish together, then the second wave roughly doubles.
    assert!(rts[3] < rts[0] * 1.1, "first wave spread: {rts:?}");
    assert!(rts[4] > rts[3] * 1.7, "no wave gap: {rts:?}");
    assert!(rts[7] < rts[4] * 1.1, "second wave spread: {rts:?}");
}

/// Time-sharing really does share: with one partition and identical jobs,
/// everyone finishes at nearly the same (late) time.
#[test]
fn time_sharing_finishes_equal_jobs_together() {
    let cost = CostModel::default();
    let batch: Vec<JobSpec> = (0..6)
        .map(|i| matmul_job(format!("m{i}"), 64, 8, &cost))
        .collect();
    let mut cfg = ExperimentConfig::paper(8, TopologyKind::Ring, PolicyKind::TimeSharing);
    // Disable host-link serialization so the finish times reflect pure
    // round-robin sharing.
    cfg.machine.host_link_per_byte = SimDuration::ZERO;
    cfg.machine.job_load_latency = SimDuration::from_millis(1);
    let r = run_batch(&cfg, batch).unwrap();
    // Jobs spread across 2 partitions; within each partition, the 3 jobs
    // round-robin and finish close together.
    let min = r.response_times.iter().min().unwrap().as_secs_f64();
    let max = r.response_times.iter().max().unwrap().as_secs_f64();
    assert!(max / min < 1.6, "finish spread too wide: {min}..{max}");
}

/// The flow-control and MMU-policy design alternatives all complete the
/// paper workload (the defaults are choices, not requirements).
#[test]
fn design_alternatives_complete() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Adaptive, 8, &sizes, &cost);
    for flow in [FlowControl::InjectionLimited, FlowControl::Reserved] {
        for policy in [AllocPolicy::Fifo, AllocPolicy::FirstFit] {
            for send in [SendMode::Async, SendMode::Blocking] {
                let mut cfg =
                    ExperimentConfig::paper(8, TopologyKind::Ring, PolicyKind::TimeSharing);
                cfg.machine.flow = flow;
                cfg.machine.alloc_policy = policy;
                cfg.machine.send_mode = send;
                let r = run_batch(&cfg, batch.clone()).unwrap_or_else(|e| {
                    panic!("{flow:?}/{policy:?}/{send:?}: {e}")
                });
                assert_eq!(r.response_times.len(), batch.len());
            }
        }
    }
}

/// Placement strategies are behaviour-preserving (same completions, maybe
/// different times).
#[test]
fn placements_all_complete() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::Sort, Arch::Fixed, 8, &sizes, &cost);
    for placement in [Placement::RoundRobin, Placement::Staggered, Placement::Blocked] {
        let mut cfg = ExperimentConfig::paper(8, MESH, PolicyKind::TimeSharing);
        cfg.placement = placement;
        let r = run_batch(&cfg, batch.clone()).unwrap();
        assert_eq!(r.response_times.len(), batch.len(), "{placement:?}");
    }
}

/// Gang scheduling: completes the paper workload, conserves everything,
/// and with a generous slot beats uncoordinated time-sharing on the
/// communication-heavy batch (the classic coscheduling result).
#[test]
fn gang_scheduling_works_and_helps_with_long_slots() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &sizes, &cost);
    let uncoordinated = run_batch(
        &ExperimentConfig::paper(16, MESH, PolicyKind::TimeSharing),
        batch.clone(),
    )
    .unwrap();
    let mut cfg = ExperimentConfig::paper(16, MESH, PolicyKind::TimeSharing);
    cfg.discipline = Discipline::Gang {
        slot: SimDuration::from_millis(200),
    };
    let gang = run_batch(&cfg, batch.clone()).unwrap();
    assert_eq!(gang.response_times.len(), batch.len());
    assert_eq!(gang.stats.messages_sent, gang.stats.messages_consumed);
    assert!(
        gang.summary.mean < uncoordinated.summary.mean,
        "gang {:.3} !< uncoordinated {:.3}",
        gang.summary.mean,
        uncoordinated.summary.mean
    );
}

/// Gang scheduling with a single job per partition degenerates to plain
/// time-sharing (no rotation partner, no parking).
#[test]
fn gang_with_one_job_equals_uncoordinated() {
    let cost = CostModel::default();
    let batch = vec![matmul_job("solo", 64, 8, &cost)];
    let base = ExperimentConfig::paper(8, TopologyKind::Ring, PolicyKind::TimeSharing);
    let mut gang_cfg = base.clone();
    gang_cfg.discipline = Discipline::Gang {
        slot: SimDuration::from_millis(50),
    };
    let a = run_batch(&base, batch.clone()).unwrap();
    let b = run_batch(&gang_cfg, batch).unwrap();
    assert_eq!(a.response_times, b.response_times);
}

/// Open arrivals: responses are measured from each job's own arrival, and
/// a lightly loaded system answers in ~constant time while a saturated one
/// queues.
#[test]
fn open_arrivals_measure_from_arrival() {
    let cost = CostModel::default();
    let params = SyntheticParams {
        width: 4,
        msg_bytes: 1024,
        cv: 0.0,
        ..SyntheticParams::default()
    };
    let mut rng = DetRng::new(3).substream("open");
    let batch = synthetic_batch(12, &params, &cost, &mut rng);
    let cfg = ExperimentConfig::paper(4, TopologyKind::Ring, PolicyKind::Static);
    // Far-apart arrivals: every job sees an empty system; responses are all
    // (almost) the standalone time.
    let sparse: Vec<SimTime> = (0..12)
        .map(|i| SimTime::ZERO + SimDuration::from_secs(10 * (i as u64 + 1)))
        .collect();
    let relaxed = run_batch_with_arrivals(&cfg, batch.clone(), sparse).unwrap();
    let min = relaxed.response_times.iter().min().unwrap().as_secs_f64();
    let max = relaxed.response_times.iter().max().unwrap().as_secs_f64();
    assert!(
        max / min < 1.05,
        "idle-system responses should be identical: {min}..{max}"
    );
    // The same jobs arriving together must queue (mean response strictly
    // larger).
    let slammed = run_batch(&cfg, batch).unwrap();
    assert!(slammed.summary.mean > relaxed.summary.mean * 1.3);
}

/// The figures pipeline end-to-end: tables have the full label axis and
/// positive means, and the CSV round-trips the row count.
#[test]
fn figure_tables_are_well_formed() {
    let mut opts = FigureOpts::default();
    opts.parallel = true;
    let table = fig4(&opts).expect("figure 4 generated");
    assert_eq!(table.rows.len(), 13);
    assert_eq!(table.rows[0].label, "1");
    assert!(table.row("16M").is_some());
    for row in &table.rows {
        assert!(row.static_mean.unwrap() > 0.0);
        assert!(row.ts_mean.unwrap() > 0.0);
    }
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 14); // header + 13 rows
    let text = table.to_text();
    assert!(text.contains("16M"));
}

/// Stall diagnosis machinery: an impossible configuration reports instead
/// of hanging (strict reservation mode on a tight machine may deadlock,
/// which must surface as a RunError with a readable diagnosis).
#[test]
fn impossible_runs_error_cleanly() {
    let cost = CostModel::default();
    // A job whose receives can never be satisfied (unbalanced on purpose,
    // bypassing check_balanced): one process waits for a message nobody
    // sends.
    let batch = vec![JobSpec {
        name: "stuck".into(),
        ship_bytes: 0,
        procs: vec![ProcSpec {
            program: vec![Op::Recv { tag: Tag(999) }],
            mem_bytes: 1024,
        }],
    }];
    let _ = cost;
    let cfg = ExperimentConfig::paper(1, TopologyKind::Linear, PolicyKind::Static);
    let err = run_batch(&cfg, batch).expect_err("must stall");
    assert!(err.diagnosis.contains("blocked-recv=1"), "{}", err.diagnosis);
    assert!(err.diagnosis.contains("1 unfinished"), "{}", err.diagnosis);
}

/// Gang scheduling completes and conserves for a spread of slot lengths.
#[test]
fn gang_completes_for_all_slot_lengths() {
    let sizes = BatchSizes {
        jobs: 8,
        small_count: 6,
        ..BatchSizes::default()
    };
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Adaptive, 8, &sizes, &cost);
    for slot_ms in [1u64, 7, 33, 150, 1000] {
        let mut cfg = ExperimentConfig::paper(8, MESH, PolicyKind::TimeSharing);
        cfg.discipline = Discipline::Gang {
            slot: SimDuration::from_millis(slot_ms),
        };
        let r = run_batch(&cfg, batch.clone())
            .unwrap_or_else(|e| panic!("slot {slot_ms}ms: {e}"));
        assert_eq!(r.response_times.len(), batch.len());
        assert_eq!(r.stats.messages_sent, r.stats.messages_consumed);
    }
}

/// The oracle crate's invariant checkers hold across policies and
/// topologies, with observability recording both OFF (machine-state
/// checkers against a bare run) and ON (event-stream and gauge checkers
/// against an instrumented run of the same configuration).
#[test]
fn invariants_hold_with_recording_off_and_on() {
    use parsched_oracle::invariants;
    let sizes = BatchSizes {
        jobs: 8,
        small_count: 6,
        ..BatchSizes::default()
    };
    let cost = CostModel::default();
    for (p, kind, policy) in [
        (4, TopologyKind::Ring, PolicyKind::Static),
        (8, MESH, PolicyKind::TimeSharing),
        (16, TopologyKind::Hypercube { dim: 0 }, PolicyKind::TimeSharing),
    ] {
        let batch = paper_batch(App::MatMul, Arch::Adaptive, p, &sizes, &cost);

        // Recording off: drive the machine directly, check its state.
        let plan = PartitionPlan::equal(16, p, kind).unwrap();
        let machine = parsched::machine::Machine::new(
            parsched::machine::MachineConfig::default(),
            parsched::machine::SystemNet::from_plan(&plan),
        );
        let mut driver = Driver::new(
            machine,
            plan,
            policy,
            QuantumRule::default(),
            Placement::RoundRobin,
            batch.clone(),
        );
        let mut engine: Engine<parsched::machine::Event> = Engine::new(QueueKind::default());
        driver.start(&mut engine);
        assert_eq!(engine.run(&mut driver), RunOutcome::Drained);
        assert!(driver.all_done());
        invariants::check_message_conservation(&driver.machine);
        invariants::check_work_conservation(&driver.machine, engine.now().since(SimTime::ZERO));

        // Recording on: the same configuration instrumented.
        let cfg = ExperimentConfig::paper(p, kind, policy);
        let (result, obs) = run_batch_observed(&cfg, batch).unwrap();
        invariants::check_event_stream(&obs.events);
        invariants::check_fcfs_admission(&obs.events);
        invariants::check_cpu_conservation(&obs.metrics, obs.layout.node_count, result.makespan);
    }
}

/// Gang scheduling composed with open arrivals: rotation must absorb jobs
/// arriving mid-run and still complete everything.
#[test]
fn gang_with_open_arrivals_completes() {
    let cost = CostModel::default();
    let batch: Vec<JobSpec> = (0..10)
        .map(|i| matmul_job(format!("g{i}"), 64, 8, &cost))
        .collect();
    let arrivals: Vec<SimTime> = (0..10)
        .map(|i| SimTime::ZERO + SimDuration::from_millis(137 * i))
        .collect();
    let mut cfg = ExperimentConfig::paper(8, TopologyKind::Ring, PolicyKind::TimeSharing);
    cfg.discipline = Discipline::Gang {
        slot: SimDuration::from_millis(100),
    };
    let r = run_batch_with_arrivals(&cfg, batch, arrivals).unwrap();
    assert_eq!(r.response_times.len(), 10);
    assert_eq!(r.stats.jobs_completed, 10);
    assert_eq!(r.stats.messages_sent, r.stats.messages_consumed);
}
