//! Bit-exact golden test for the Figure 3 grid (matmul, fixed
//! architecture, all partition sizes/topologies including the 16-node
//! hypercube).
//!
//! The simulator is deterministic, so these are not tolerances but exact
//! `f64` bit patterns: any engine, network or scheduling change that moves
//! a single event reorders something and trips this test. Performance work
//! on the hot paths must leave every value untouched.
//!
//! To re-record after an *intentional* model change (and after updating
//! EXPERIMENTS.md to match):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_f3 -- --nocapture
//! ```
//!
//! and paste the printed rows over `GOLDEN`.

use parsched::prelude::*;

/// (config label, static mean bits, time-sharing mean bits).
const GOLDEN: &[(&str, u64, u64)] = &[
    ("1", 0x4011085ca445c506, 0x4011085ca445c506),
    ("2L", 0x400afc1dfd4108df, 0x400a33d528bbe0ec),
    ("4L", 0x40083efa398ee457, 0x40089b9b7ea11ac3),
    ("4R", 0x40082e5ce80d7001, 0x4008924bb079fd3f),
    ("4M", 0x400832e2f890d380, 0x400894e9d35ca2b2),
    ("4H", 0x400832e2f890d380, 0x400894e9d35ca2b2),
    ("8L", 0x400c6d09bd0f8cdd, 0x400d7b4a6a204910),
    ("8R", 0x400b9d81d24a06ab, 0x400d5339042d8c2a),
    ("8M", 0x400bfc0217988934, 0x400d650361bce704),
    ("8H", 0x400bee868d92132c, 0x400d5fc3f3346a96),
    ("16L", 0x40154b5022ad291a, 0x401bda4377e4681e),
    ("16R", 0x401338525bed66a0, 0x401bfbb7431a286d),
    ("16M", 0x4013cfe180381eaa, 0x401a56609bbaf5d0),
    ("16H", 0x4013a18e77044bf2, 0x4019d1f2935ae62a),
];

fn fig3_table() -> FigureTable {
    fig3(&FigureOpts {
        include_16h: true,
        ..FigureOpts::default()
    })
    .expect("fig3 grid simulates")
}

#[test]
fn fig3_grid_is_bit_identical_to_golden() {
    let table = fig3_table();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        for r in &table.rows {
            println!(
                "    (\"{}\", 0x{:016x}, 0x{:016x}),",
                r.label,
                r.static_mean.expect("fig3 rows carry both policies").to_bits(),
                r.ts_mean.expect("fig3 rows carry both policies").to_bits(),
            );
        }
        return;
    }
    assert_eq!(
        table.rows.len(),
        GOLDEN.len(),
        "fig3 grid shape changed: {:?}",
        table.rows.iter().map(|r| r.label.as_str()).collect::<Vec<_>>()
    );
    for (r, (label, static_bits, ts_bits)) in table.rows.iter().zip(GOLDEN) {
        assert_eq!(r.label, *label, "row order changed");
        let s = r.static_mean.expect("fig3 rows carry both policies");
        let t = r.ts_mean.expect("fig3 rows carry both policies");
        assert_eq!(
            s.to_bits(),
            *static_bits,
            "{label} static drifted: got {s}, golden {}",
            f64::from_bits(*static_bits)
        );
        assert_eq!(
            t.to_bits(),
            *ts_bits,
            "{label} ts drifted: got {t}, golden {}",
            f64::from_bits(*ts_bits)
        );
    }
}
