//! Analytic validation: drive the full stack (driver + machine + engine)
//! with workloads whose steady-state behaviour queueing theory predicts in
//! closed form, and check the simulator against the formulas. This is the
//! strongest correctness evidence a simulator can offer short of the
//! original hardware.

use parsched::prelude::*;

/// Build `n` single-process jobs of the given demands, with zero memory
/// and no messaging: a pure queueing workload.
fn queueing_jobs(demands: &[f64]) -> Vec<JobSpec> {
    demands
        .iter()
        .enumerate()
        .map(|(i, &d)| JobSpec {
            name: format!("q{i}"),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(SimDuration::from_secs_f64(d))],
                mem_bytes: 0,
            }],
        })
        .collect()
}

/// A single-node machine with loader/scheduling overheads zeroed, so the
/// only delays are queueing delays.
fn clean_config(policy: PolicyKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        system_size: 1,
        ..ExperimentConfig::paper(1, TopologyKind::Linear, policy)
    };
    cfg.machine.job_load_latency = SimDuration::ZERO;
    cfg.machine.host_link_per_byte = SimDuration::ZERO;
    cfg.machine.ctx_switch_low = SimDuration::ZERO;
    cfg
}

/// M/D/1: Poisson arrivals, deterministic service, FCFS single server.
/// Mean response W = s + rho * s / (2 (1 - rho)).
#[test]
fn mm_style_md1_queue_matches_pollaczek_khinchine() {
    let n = 4000;
    let service = 0.010; // 10 ms
    for rho in [0.3f64, 0.6, 0.8] {
        let mut rng = DetRng::new(99).substream(&format!("md1-{rho}"));
        let arrivals = poisson_arrivals(
            n,
            SimDuration::from_secs_f64(service / rho),
            &mut rng,
        );
        let batch = queueing_jobs(&vec![service; n]);
        let cfg = clean_config(PolicyKind::Static);
        let r = run_batch_with_arrivals(&cfg, batch, arrivals).expect("md1 run");
        // Drop a warmup prefix; average the rest.
        let tail = &r.response_times[n / 10..];
        let mean: f64 =
            tail.iter().map(|d| d.as_secs_f64()).sum::<f64>() / tail.len() as f64;
        let expect = service + rho * service / (2.0 * (1.0 - rho));
        let rel = (mean - expect).abs() / expect;
        assert!(
            rel < 0.12,
            "M/D/1 at rho={rho}: simulated {mean:.5}s vs P-K {expect:.5}s ({rel:.3} off)"
        );
    }
}

/// M/M/1: Poisson arrivals, exponential service, FCFS single server.
/// Mean response W = s / (1 - rho).
#[test]
fn mm1_queue_matches_closed_form() {
    let n = 6000;
    let service = 0.010;
    for rho in [0.4f64, 0.7] {
        let root = DetRng::new(7).substream(&format!("mm1-{rho}"));
        let mut arr_rng = root.substream("arrivals");
        let mut svc_rng = root.substream("service");
        let arrivals = poisson_arrivals(
            n,
            SimDuration::from_secs_f64(service / rho),
            &mut arr_rng,
        );
        let demands: Vec<f64> = (0..n).map(|_| svc_rng.exponential(service)).collect();
        let batch = queueing_jobs(&demands);
        let cfg = clean_config(PolicyKind::Static);
        let r = run_batch_with_arrivals(&cfg, batch, arrivals).expect("mm1 run");
        let tail = &r.response_times[n / 10..];
        let mean: f64 =
            tail.iter().map(|d| d.as_secs_f64()).sum::<f64>() / tail.len() as f64;
        let expect = service / (1.0 - rho);
        let rel = (mean - expect).abs() / expect;
        assert!(
            rel < 0.15,
            "M/M/1 at rho={rho}: simulated {mean:.5}s vs {expect:.5}s ({rel:.3} off)"
        );
    }
}

/// Processor sharing: under time-sharing with a small quantum, the M/M/1-PS
/// mean response equals the M/M/1-FCFS mean (a classic, non-obvious
/// identity) — but the *conditional* response of short jobs is better.
#[test]
fn mm1_processor_sharing_matches_fcfs_mean() {
    let n = 4000;
    let service = 0.020;
    let rho = 0.6;
    let root = DetRng::new(21).substream("ps");
    let mut arr_rng = root.substream("arrivals");
    let mut svc_rng = root.substream("service");
    let arrivals = poisson_arrivals(
        n,
        SimDuration::from_secs_f64(service / rho),
        &mut arr_rng,
    );
    let demands: Vec<f64> = (0..n).map(|_| svc_rng.exponential(service)).collect();
    let batch = queueing_jobs(&demands);
    let mut cfg = clean_config(PolicyKind::TimeSharing);
    cfg.rule = QuantumRule::RrProcess {
        quantum: SimDuration::from_micros(200), // quantum << service: ~PS
    };
    let r = run_batch_with_arrivals(&cfg, batch.clone(), arrivals.clone()).expect("ps run");
    let tail = &r.response_times[n / 10..];
    let mean: f64 = tail.iter().map(|d| d.as_secs_f64()).sum::<f64>() / tail.len() as f64;
    let expect = service / (1.0 - rho);
    let rel = (mean - expect).abs() / expect;
    assert!(
        rel < 0.15,
        "M/M/1-PS at rho={rho}: simulated {mean:.5}s vs {expect:.5}s ({rel:.3} off)"
    );
    // Conditional improvement for short jobs: the shortest-quartile jobs
    // respond faster under PS than under FCFS.
    let fcfs = run_batch_with_arrivals(&clean_config(PolicyKind::Static), batch, arrivals)
        .expect("fcfs run");
    let mut by_demand: Vec<(f64, f64, f64)> = demands
        .iter()
        .zip(&r.response_times)
        .zip(&fcfs.response_times)
        .skip(n / 10)
        .map(|((d, ps), fc)| (*d, ps.as_secs_f64(), fc.as_secs_f64()))
        .collect();
    by_demand.sort_by(|a, b| a.0.total_cmp(&b.0));
    let quartile = &by_demand[..by_demand.len() / 4];
    let ps_short: f64 = quartile.iter().map(|x| x.1).sum::<f64>() / quartile.len() as f64;
    let fcfs_short: f64 = quartile.iter().map(|x| x.2).sum::<f64>() / quartile.len() as f64;
    assert!(
        ps_short < fcfs_short,
        "short jobs must prefer PS: ps {ps_short:.5} vs fcfs {fcfs_short:.5}"
    );
}

/// Two single-node partitions under static space-sharing behave like M/D/2:
/// mean response must sit strictly between the M/D/1 response at the same
/// per-server load and the no-wait service time.
#[test]
fn two_partitions_behave_like_two_servers() {
    let n = 4000;
    let service = 0.010;
    let rho_per_server = 0.7;
    let mut rng = DetRng::new(5).substream("md2");
    // Total arrival rate = 2 x rho / s.
    let arrivals = poisson_arrivals(
        n,
        SimDuration::from_secs_f64(service / (2.0 * rho_per_server)),
        &mut rng,
    );
    let batch = queueing_jobs(&vec![service; n]);
    let mut cfg = clean_config(PolicyKind::Static);
    cfg.system_size = 2;
    let r = run_batch_with_arrivals(&cfg, batch, arrivals).expect("md2 run");
    let tail = &r.response_times[n / 10..];
    let mean: f64 = tail.iter().map(|d| d.as_secs_f64()).sum::<f64>() / tail.len() as f64;
    let md1 = service + rho_per_server * service / (2.0 * (1.0 - rho_per_server));
    assert!(
        mean > service && mean < md1,
        "M/D/2 mean {mean:.5} must lie in ({service:.5}, {md1:.5})"
    );
}

/// Sixteen single-node partitions under static space-sharing form an
/// M/M/16 queue; the simulated mean response must match Erlang-C.
#[test]
fn mm16_matches_erlang_c() {
    let n = 12_000;
    let service = 0.020;
    let m_servers = 16usize;
    let rho = 0.8; // per-server utilization
    let root = DetRng::new(3).substream("mm16");
    let mut arr_rng = root.substream("arrivals");
    let mut svc_rng = root.substream("service");
    // lambda = m * rho / s  =>  mean interarrival = s / (m * rho).
    let arrivals = poisson_arrivals(
        n,
        SimDuration::from_secs_f64(service / (m_servers as f64 * rho)),
        &mut arr_rng,
    );
    let demands: Vec<f64> = (0..n).map(|_| svc_rng.exponential(service)).collect();
    let batch = queueing_jobs(&demands);
    let mut cfg = clean_config(PolicyKind::Static);
    cfg.system_size = m_servers;
    let r = run_batch_with_arrivals(&cfg, batch, arrivals).expect("mm16 run");
    let tail = &r.response_times[n / 10..];
    let mean: f64 = tail.iter().map(|d| d.as_secs_f64()).sum::<f64>() / tail.len() as f64;

    // Erlang C: offered load a = m * rho; P(wait) = C(m, a);
    // W = s + C * s / (m (1 - rho)).
    let a = m_servers as f64 * rho;
    let mut term = 1.0; // a^k / k!
    let mut sum = 0.0;
    for k in 0..m_servers {
        if k > 0 {
            term *= a / k as f64;
        }
        sum += term;
    }
    let top = term * a / m_servers as f64 / (1.0 - rho); // a^m / m! * 1/(1-rho)
    let c = top / (sum + top);
    let expect = service + c * service / (m_servers as f64 * (1.0 - rho));
    let rel = (mean - expect).abs() / expect;
    assert!(
        rel < 0.15,
        "M/M/16 at rho={rho}: simulated {mean:.5}s vs Erlang-C {expect:.5}s ({rel:.3} off)"
    );
}
