//! The paper's qualitative claims, asserted against the simulation.
//!
//! Each test reproduces one finding of Chan, Dandamudi & Majumdar (IPPS
//! 1997) §5 end-to-end: generate the paper batch, run the policies, check
//! the ordering the paper reports. EXPERIMENTS.md records the quantitative
//! side; these tests pin the *shape* so a regression in any crate that
//! flips a conclusion fails CI.

use parsched::prelude::*;

fn experiment(
    app: App,
    arch: Arch,
    p: usize,
    kind: TopologyKind,
    policy: PolicyKind,
) -> ExperimentResult {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(app, arch, p, &sizes, &cost);
    run_experiment(&ExperimentConfig::paper(p, kind, policy), &batch)
        .expect("paper configuration must simulate to completion")
}

const MESH: TopologyKind = TopologyKind::Mesh { rows: 0, cols: 0 };

/// §5.2: "when there are 16 partitions of 1 processor each, both policies
/// behave the same way" — and both software architectures coincide there
/// for the adaptive case.
#[test]
fn all_policies_coincide_on_single_processor_partitions() {
    for app in [App::MatMul, App::Sort] {
        for arch in [Arch::Fixed, Arch::Adaptive] {
            let st = experiment(app, arch, 1, TopologyKind::Linear, PolicyKind::Static);
            let ts = experiment(app, arch, 1, TopologyKind::Linear, PolicyKind::TimeSharing);
            let rel = (st.mean_response - ts.mean_response).abs() / st.mean_response;
            assert!(
                rel < 0.02,
                "{app:?}/{arch:?} at p=1: static {} vs ts {} differ by {rel:.3}",
                st.mean_response,
                ts.mean_response
            );
        }
    }
}

/// §5.2: "time-sharing always performs worse than the static policy for
/// this application" — sharpest at the single 16-processor partition, where
/// the multiprogramming level is highest.
#[test]
fn static_beats_time_sharing_for_matmul_at_large_partitions() {
    for kind in [TopologyKind::Linear, TopologyKind::Ring, MESH] {
        for arch in [Arch::Fixed, Arch::Adaptive] {
            let st = experiment(App::MatMul, arch, 16, kind, PolicyKind::Static);
            let ts = experiment(App::MatMul, arch, 16, kind, PolicyKind::TimeSharing);
            assert!(
                ts.mean_response > st.mean_response * 1.1,
                "{arch:?}/16{}: ts {} !>> static {}",
                kind.label(),
                ts.mean_response,
                st.mean_response
            );
        }
    }
}

/// §5.2: the gap between static and time-sharing *grows* as partitions get
/// larger (moving right along the figures' x axes).
#[test]
fn time_sharing_penalty_grows_with_partition_size() {
    let ratio = |p: usize, kind: TopologyKind| {
        let st = experiment(App::MatMul, Arch::Fixed, p, kind, PolicyKind::Static);
        let ts = experiment(App::MatMul, Arch::Fixed, p, kind, PolicyKind::TimeSharing);
        ts.mean_response / st.mean_response
    };
    let r1 = ratio(1, TopologyKind::Linear);
    let r8 = ratio(8, TopologyKind::Ring);
    let r16 = ratio(16, TopologyKind::Ring);
    assert!(
        r1 < r8 + 0.05 && r8 < r16,
        "penalty not monotone: p=1 {r1:.3}, p=8 {r8:.3}, p=16 {r16:.3}"
    );
    assert!((r1 - 1.0).abs() < 0.02, "p=1 must be a tie, got {r1:.3}");
}

/// §5.1/§5.2: "the hybrid policy performs much better than the true
/// time-sharing policy" — hybrid = time-sharing at smaller partitions.
#[test]
fn hybrid_beats_pure_time_sharing() {
    for arch in [Arch::Fixed, Arch::Adaptive] {
        let hybrid = experiment(App::MatMul, arch, 4, TopologyKind::Ring, PolicyKind::TimeSharing);
        let pure = experiment(App::MatMul, arch, 16, TopologyKind::Ring, PolicyKind::TimeSharing);
        assert!(
            hybrid.mean_response * 1.5 < pure.mean_response,
            "{arch:?}: hybrid 4R {} not much better than pure TS 16R {}",
            hybrid.mean_response,
            pure.mean_response
        );
    }
}

/// §5.2: "the adaptive software architecture is better than the fixed
/// architecture for this [matmul] application" — fewer processes mean fewer
/// B copies and messages at small partitions.
#[test]
fn adaptive_beats_fixed_for_matmul() {
    for p in [2usize, 4, 8] {
        let kind = TopologyKind::Ring;
        for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
            let fixed = experiment(App::MatMul, Arch::Fixed, p, kind, policy);
            let adaptive = experiment(App::MatMul, Arch::Adaptive, p, kind, policy);
            assert!(
                adaptive.mean_response < fixed.mean_response,
                "p={p} {policy:?}: adaptive {} !< fixed {}",
                adaptive.mean_response,
                fixed.mean_response
            );
        }
    }
}

/// §5.3: "the fixed architecture exhibits substantial speedups ... fixed
/// architecture is better suited to this type of application" — selection
/// sort's O(n²) leaves reward more, smaller pieces.
#[test]
fn fixed_beats_adaptive_for_sort() {
    for p in [1usize, 2, 4] {
        let kind = TopologyKind::Linear;
        let fixed = experiment(App::Sort, Arch::Fixed, p, kind, PolicyKind::Static);
        let adaptive = experiment(App::Sort, Arch::Adaptive, p, kind, PolicyKind::Static);
        assert!(
            fixed.mean_response * 2.0 < adaptive.mean_response,
            "p={p}: fixed {} not substantially better than adaptive {}",
            fixed.mean_response,
            adaptive.mean_response
        );
    }
}

/// §5.2: "when the number of partitions is one, both software architectures
/// are equivalent and produce the same results."
#[test]
fn architectures_coincide_on_one_partition() {
    for app in [App::MatMul, App::Sort] {
        let fixed = experiment(app, Arch::Fixed, 16, MESH, PolicyKind::TimeSharing);
        let adaptive = experiment(app, Arch::Adaptive, 16, MESH, PolicyKind::TimeSharing);
        assert_eq!(
            fixed.mean_response, adaptive.mean_response,
            "{app:?}: T=16 must make the architectures identical"
        );
    }
}

/// §5.2: "the low degree, long diameter networks (as exemplified by the
/// linear network) cause performance deterioration when time-sharing is
/// used", and time-sharing is more sensitive to topology than static.
#[test]
fn linear_network_hurts_time_sharing_most() {
    let mean = |kind, policy| experiment(App::MatMul, Arch::Fixed, 16, kind, policy).mean_response;
    let ts_linear = mean(TopologyKind::Linear, PolicyKind::TimeSharing);
    let ts_mesh = mean(MESH, PolicyKind::TimeSharing);
    let ts_cube_like = mean(TopologyKind::Ring, PolicyKind::TimeSharing);
    assert!(
        ts_linear >= ts_mesh && ts_linear >= ts_cube_like.min(ts_mesh),
        "linear should be the worst for ts: L={ts_linear} R={ts_cube_like} M={ts_mesh}"
    );
    // Sensitivity = worst/best spread across topologies, per policy.
    let st_spread = {
        let l = mean(TopologyKind::Linear, PolicyKind::Static);
        let m = mean(MESH, PolicyKind::Static);
        let r = mean(TopologyKind::Ring, PolicyKind::Static);
        let lo = l.min(m).min(r);
        let hi = l.max(m).max(r);
        hi / lo
    };
    let ts_spread = {
        let lo = ts_linear.min(ts_mesh).min(ts_cube_like);
        let hi = ts_linear.max(ts_mesh).max(ts_cube_like);
        hi / lo
    };
    assert!(
        ts_spread >= st_spread * 0.95,
        "ts not more topology-sensitive: ts {ts_spread:.3} vs static {st_spread:.3}"
    );
}

/// §5.2 conjecture: wormhole-style routing "can significantly reduce the
/// need for buffers at intermediate processors" and the topology
/// sensitivity of the policies.
#[test]
fn cut_through_reduces_time_sharing_penalty() {
    let run = |switching| {
        let sizes = BatchSizes::default();
        let cost = CostModel::default();
        let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &sizes, &cost);
        let mut cfg = ExperimentConfig::paper(16, TopologyKind::Linear, PolicyKind::TimeSharing);
        cfg.machine.switching = switching;
        run_experiment(&cfg, &batch).expect("run completed").mean_response
    };
    let saf = run(Switching::StoreAndForward);
    let ct = run(Switching::CutThrough);
    assert!(ct < saf, "cut-through {ct} !< store-and-forward {saf}");
}

/// §5.2 / refs [2,3]: with higher service-demand variance, time-sharing
/// overtakes static space-sharing.
#[test]
fn variance_crossover_exists() {
    let cost = CostModel::default();
    let ratio_at = |cv: f64, idx: u64| {
        let params = SyntheticParams {
            cv,
            width: 4,
            msg_bytes: 1024,
            ..SyntheticParams::default()
        };
        let mut rng = DetRng::new(42).substream_idx("crossover-test", idx);
        let batch = synthetic_batch(16, &params, &cost, &mut rng);
        let st = run_experiment(
            &ExperimentConfig::paper(16, MESH, PolicyKind::Static),
            &batch,
        )
        .expect("static run");
        let ts = run_experiment(
            &ExperimentConfig::paper(16, MESH, PolicyKind::TimeSharing),
            &batch,
        )
        .expect("ts run");
        ts.mean_response / st.mean_response
    };
    let low = ratio_at(0.0, 0);
    let high = ratio_at(2.0, 1);
    assert!(low > 1.1, "at cv=0 static must win clearly, ratio {low:.3}");
    assert!(high < 1.0, "at cv=2 time-sharing must win, ratio {high:.3}");
}

/// §2.2: the RR-job quantum rule shares processing power equally among
/// *jobs*; plain RR-process favours jobs with more processes.
#[test]
fn rr_job_is_fairer_than_rr_process() {
    let cost = CostModel::default();
    let demand = SimDuration::from_secs(2);
    let narrow = SyntheticParams { width: 4, msg_bytes: 1024, ..SyntheticParams::default() };
    let wide = SyntheticParams { width: 16, msg_bytes: 1024, ..SyntheticParams::default() };
    let batch: Vec<_> = (0..16)
        .map(|i| {
            let p = if i % 2 == 0 { &narrow } else { &wide };
            synthetic_job(format!("mix{i}"), demand, p, &cost)
        })
        .collect();
    let unfairness = |rule: QuantumRule| {
        let mut cfg = ExperimentConfig::paper(16, MESH, PolicyKind::TimeSharing);
        cfg.rule = rule;
        let r = run_experiment(&cfg, &batch).expect("run completed");
        let rts = &r.primary.response_times;
        let narrow_mean: f64 = rts.iter().step_by(2).map(|d| d.as_secs_f64()).sum::<f64>() / 8.0;
        let wide_mean: f64 =
            rts.iter().skip(1).step_by(2).map(|d| d.as_secs_f64()).sum::<f64>() / 8.0;
        narrow_mean / wide_mean
    };
    let rr_job = unfairness(QuantumRule::RrJob { base: SimDuration::from_millis(2) });
    let rr_proc = unfairness(QuantumRule::RrProcess { quantum: SimDuration::from_millis(2) });
    assert!(
        (rr_job - 1.0).abs() < 0.25,
        "RR-job should treat widths near-equally, got {rr_job:.3}"
    );
    assert!(
        rr_proc > rr_job + 0.3,
        "RR-process should starve narrow jobs: rr-proc {rr_proc:.3} vs rr-job {rr_job:.3}"
    );
}

/// §2.1's implicit tuning problem: the optimal static partition size
/// shrinks (weakly) as the batch grows.
#[test]
fn optimal_partition_shrinks_with_load() {
    let cost = CostModel::default();
    let best_p = |jobs: usize| {
        let sizes = BatchSizes {
            jobs,
            small_count: jobs * 3 / 4,
            ..BatchSizes::default()
        };
        [1usize, 2, 4, 8, 16]
            .into_iter()
            .map(|p| {
                let batch = paper_batch(App::MatMul, Arch::Adaptive, p, &sizes, &cost);
                let r = run_experiment(
                    &ExperimentConfig::paper(p, TopologyKind::Ring, PolicyKind::Static),
                    &batch,
                )
                .expect("tuning run");
                (r.mean_response, p)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("nonempty")
            .1
    };
    let small_batch = best_p(4);
    let large_batch = best_p(32);
    assert!(
        large_batch <= small_batch,
        "optimal partition must shrink with load: {small_batch} -> {large_batch}"
    );
    assert!(small_batch > 1, "small batches must prefer real parallelism");
}

/// §2.3: the hybrid's set size is a tuning parameter — every MPL must at
/// least complete, and MPL 1 must match the static policy's admission
/// behaviour (modulo the quantum rule).
#[test]
fn hybrid_set_size_sweep_completes() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Adaptive, 8, &sizes, &cost);
    let mut last = None;
    for mpl in [1usize, 2, 4, 8] {
        let mut cfg = ExperimentConfig::paper(8, MESH, PolicyKind::TimeSharing);
        cfg.mpl = Some(mpl);
        let r = run_experiment(&cfg, &batch).expect("mpl sweep run");
        assert!(r.mean_response > 0.0);
        last = Some(r.mean_response);
    }
    assert!(last.is_some());
}
