//! # parsched
//!
//! A full reproduction of **"Performance Comparison of Processor Scheduling
//! Strategies in a Distributed-Memory Multicomputer System"** (Chan,
//! Dandamudi & Majumdar, IPPS 1997) as a Rust library, built on a
//! deterministic discrete-event model of the paper's 16-node Transputer
//! machine.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`des`] — the discrete-event kernel (time, event queues, statistics,
//!   deterministic RNG);
//! * [`topology`] — interconnects (linear/ring/mesh/hypercube), routing and
//!   partitioning;
//! * [`machine`] — the simulated multicomputer (two-priority CPUs, MMU,
//!   links, packetized store-and-forward, mailboxes, host-link loader);
//! * [`workload`] — the paper's applications (matrix multiplication,
//!   divide-and-conquer sort) plus synthetic fork-join jobs;
//! * [`obs`] — observability: typed event telemetry, the time-weighted
//!   metrics registry and the Chrome-trace exporter;
//! * [`core`] — the scheduling policies (static space-sharing,
//!   time-sharing/hybrid), the experiment harness and the paper figures.
//!
//! ## Quick taste
//!
//! ```
//! use parsched::prelude::*;
//!
//! // One 4-processor ring partition; two tiny jobs; static space-sharing.
//! let cost = CostModel::default();
//! let batch = vec![
//!     matmul_job("a", 32, 4, &cost),
//!     matmul_job("b", 32, 4, &cost),
//! ];
//! let mut config = ExperimentConfig::paper(4, TopologyKind::Ring, PolicyKind::Static);
//! config.system_size = 4;
//! let result = run_experiment(&config, &batch).expect("simulation completed");
//! assert_eq!(result.primary.response_times.len(), 2);
//! assert!(result.mean_response > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios, `crates/bench` for the harness
//! that regenerates every figure of the paper, and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub use parsched_core as core;
pub use parsched_des as des;
pub use parsched_machine as machine;
pub use parsched_obs as obs;
pub use parsched_topology as topology;
pub use parsched_workload as workload;

/// Everything a typical experiment needs in one import.
pub mod prelude {
    pub use parsched_core::prelude::*;
    pub use parsched_des::prelude::*;
    pub use parsched_machine::prelude::*;
    pub use parsched_obs::prelude::*;
    pub use parsched_topology::{
        build, config_label, metrics, paper_configs, NodeId, PartitionPlan, Router,
        Topology, TopologyKind,
    };
    pub use parsched_workload::prelude::*;
}
