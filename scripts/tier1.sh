#!/usr/bin/env bash
# Tier-1 gate: release build, lint wall, full workspace test suite, the
# perf binary's golden check (simulated results must match
# BENCH_parsched.json bit-exactly — fault plans default to empty, so this
# also pins that the fault layer costs nothing when unused), a
# fault-injection smoke gate (one crash and one flaky-link scenario per
# policy class, run twice with the oracle's invariant checkers on and
# bit-identical replay asserted), a sharded-execution smoke gate (one
# K = 2 run per eligibility class — free-mode time-sharing, static,
# hybrid MPL-2, MPL-capped static, crash + flaky-link fault plan, and a
# 4096-node torus — each bit-identical to sequential and rerun
# deterministically, with ineligible configs falling back with a
# reason), a wormhole smoke gate (one bit-identical K = 2 flit-switched
# case per topology family — torus, fat-tree, dragonfly — inside
# `shards --smoke`), an open-system smoke gate (Poisson and heavy-tailed
# arrival cells per policy class replay bit-identically and the
# mean-response curve is monotone in offered load), and a trace-export
# smoke run. The perf golden check also pins the shard_scale_* cells,
# the 1024-node t1k_* cells, and the ~4096-node t4k_* wormhole-vs-
# store-and-forward cells, asserting each family's sequential/2-shard/
# 4-shard goldens are bit-equal, so sharded simulated results are gated
# there too. A 16k-node smoke gate (`scale --smoke`) constructs and
# routes a 128x128 torus, runs one short wormhole batch at 16 384 nodes,
# and drives an observed run on a 70 225-node machine whose traffic must
# cross the old 65 536 node-index ceiling — no goldens, just the widened
# u32 index paths end to end. The heavier t16k_*/t64k_* perf cells are
# pinned in BENCH_parsched.json but gated behind `perf --heavy` so the
# standard tier-1 wall-clock stays flat.
# Everything runs offline; no network access required.
#
#   scripts/tier1.sh             the standard gate
#   scripts/tier1.sh tier1-full  also runs the long differential-oracle
#                                sweep (hundreds of randomized scenarios —
#                                roughly a third draw non-empty fault
#                                plans — through both engines; see
#                                TESTING.md). ORACLE_CASES / ORACLE_SEED
#                                override the sweep size and root seed. A
#                                failing case prints its replay line and
#                                dumps the full report under target/repro/.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-tier1}"

cargo build --release --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
cargo run --release -p parsched-bench --bin perf -- --check --quick
cargo run --release -p parsched-bench --bin faults -- --smoke
cargo run --release -p parsched-bench --bin shards -- --smoke
cargo run --release -p parsched-bench --bin arrivals -- --smoke
cargo run --release -p parsched-bench --bin scale -- --smoke

if [ "$mode" = "tier1-full" ]; then
    ORACLE_CASES="${ORACLE_CASES:-480}" \
        cargo test --release -q -p parsched-oracle --test differential \
        -- --include-ignored differential_sweep_full
fi

# Trace smoke: the observability pipeline end-to-end — instrumented 16H
# run, Chrome-trace JSON + metrics CSV land in a scratch directory.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p parsched-bench --bin trace -- 16H --out-dir "$trace_dir"
test -s "$trace_dir/trace_16H_ts.json"
test -s "$trace_dir/metrics_16H_ts.csv"

echo "tier1: OK"
