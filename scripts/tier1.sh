#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, then the perf
# binary's golden check (simulated results must match BENCH_parsched.json
# bit-exactly). Everything runs offline; no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo run --release -p parsched-bench --bin perf -- --check
echo "tier1: OK"
