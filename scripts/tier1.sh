#!/usr/bin/env bash
# Tier-1 gate: release build, lint wall, full workspace test suite, the
# perf binary's golden check (simulated results must match
# BENCH_parsched.json bit-exactly), and a trace-export smoke run.
# Everything runs offline; no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
cargo run --release -p parsched-bench --bin perf -- --check --quick

# Trace smoke: the observability pipeline end-to-end — instrumented 16H
# run, Chrome-trace JSON + metrics CSV land in a scratch directory.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p parsched-bench --bin trace -- 16H --out-dir "$trace_dir"
test -s "$trace_dir/trace_16H_ts.json"
test -s "$trace_dir/metrics_16H_ts.csv"

echo "tier1: OK"
