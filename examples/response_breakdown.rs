//! Where does response time go? Run one paper batch with the timeline
//! recorder on and break each job's response into load, own CPU work, and
//! waiting (queueing + communication + sharing) — the kind of accounting
//! the paper could only speculate about ("the effect of various system
//! overheads").
//!
//! ```text
//! cargo run --release --example response_breakdown [static|ts]
//! ```

#![allow(clippy::field_reassign_with_default)]

use parsched::machine::JobSummary;
use parsched::machine::{JobId, SpanKind};
use parsched::prelude::*;

fn main() {
    let policy = match std::env::args().nth(1).as_deref() {
        Some("static") => PolicyKind::Static,
        Some("ts") | None => PolicyKind::TimeSharing,
        Some(other) => {
            eprintln!("unknown policy '{other}', expected static|ts");
            std::process::exit(2);
        }
    };
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Adaptive, 16, &sizes, &cost);

    // Drive the machine directly so we keep it (and its timeline) after the
    // run.
    let plan = PartitionPlan::equal(16, 16, TopologyKind::Ring).unwrap();
    let mut machine_cfg = MachineConfig::default();
    machine_cfg.record_timeline = true;
    let machine = parsched::machine::Machine::new(
        machine_cfg,
        parsched::machine::SystemNet::from_plan(&plan),
    );
    let mut driver = Driver::new(
        machine,
        plan,
        policy,
        QuantumRule::default(),
        Placement::RoundRobin,
        batch,
    );
    let mut engine: Engine<parsched::machine::Event> = Engine::new(QueueKind::BinaryHeap);
    driver.start(&mut engine);
    assert_eq!(engine.run(&mut driver), RunOutcome::Drained, "{}", driver.diagnose());

    println!(
        "{} on one 16-node ring (matmul adaptive batch):\n",
        policy.label()
    );
    println!(
        "{:<22} {:>9} {:>8} {:>9} {:>9} {:>7}",
        "job", "response", "load", "own-cpu", "waiting", "cpu/rt"
    );
    let m = &driver.machine;
    for id in 0..m.jobs().len() {
        let s = JobSummary::capture(m, JobId(id as u32));
        let waiting = s
            .response
            .saturating_sub(s.load_time)
            .saturating_sub(s.cpu_time / s.width.max(1) as u64);
        println!(
            "{:<22} {:>9} {:>8} {:>9} {:>9} {:>6.2}",
            s.name,
            format!("{}", s.response),
            format!("{}", s.load_time),
            format!("{}", s.cpu_time),
            format!("{}", waiting),
            s.cpu_share(),
        );
    }

    let tl = &m.timeline;
    println!(
        "\nmachine-wide spans: compute {}, handlers {}, message lifetimes {} \
         ({} spans recorded)",
        tl.total(SpanKind::Compute),
        tl.total(SpanKind::Handler),
        tl.total(SpanKind::Message),
        tl.spans().len(),
    );
    println!(
        "handler time is CPU *stolen* from computation at high priority — \
         the paper's \"message congestion\" made visible."
    );
}
