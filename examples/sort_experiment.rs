//! The paper's sorting experiment (Figures 5 and 6), highlighting the
//! fixed-vs-adaptive software architecture effect of §5.3: selection sort's
//! O(n²) work phase makes 16 small pieces vastly cheaper than p large ones,
//! so the *fixed* architecture wins for this application — the opposite of
//! matrix multiplication.
//!
//! ```text
//! cargo run --release --example sort_experiment
//! ```

use parsched::prelude::*;

fn main() {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();

    println!(
        "divide-and-conquer selection sort ({} small / {} large keys)\n",
        sizes.sort_small, sizes.sort_large
    );

    // Total work shrinks quadratically with the piece count: show the §5.3
    // argument numerically before running anything.
    println!("sequential work of one large job, by process count:");
    for t in [1usize, 2, 4, 8, 16] {
        let job = sort_job("probe", sizes.sort_large, t, &cost);
        println!(
            "  T = {t:>2}: {:>10}  ({} messages, {} KB moved)",
            format!("{}", job.total_compute()),
            job.procs.iter().map(|p| p.send_count()).sum::<u64>(),
            job.total_bytes() / 1024,
        );
    }

    println!(
        "\n{:<7} {:>11} {:>11} {:>11} {:>11}",
        "config", "fix-static", "fix-ts", "ada-static", "ada-ts"
    );
    for (p, kind) in paper_configs(false) {
        let mut row = format!("{:<7}", config_label(p, kind));
        for arch in [Arch::Fixed, Arch::Adaptive] {
            let batch = paper_batch(App::Sort, arch, p, &sizes, &cost);
            for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
                let r = run_experiment(&ExperimentConfig::paper(p, kind, policy), &batch)
                    .expect("run completed");
                row.push_str(&format!(" {:>11.3}", r.mean_response));
            }
        }
        println!("{row}");
    }

    println!(
        "\nThe fixed architecture dominates at small partitions (compare the\n\
         first and third columns), and the two coincide at a single 16-node\n\
         partition — exactly the paper's Figures 5 and 6."
    );
}
