//! Explore the interconnects the paper configures through its C004
//! switches: graph metrics, routing behaviour, and the measured effect of
//! topology on scheduling performance.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use parsched::prelude::*;
use parsched::topology::distance;

fn main() {
    println!("16-node topology metrics (the paper's §3.1 configurations):\n");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>7} {:>6}",
        "topology", "diameter", "avg dist", "bisection", "degree", "edges"
    );
    let topos = [
        ("linear", build::linear(16).unwrap()),
        ("ring", build::ring(16).unwrap()),
        ("mesh 4x4", build::mesh(4, 4).unwrap()),
        ("hypercube", build::hypercube(4).unwrap()),
        ("nap chain", build::nap_backbone()),
    ];
    for (name, topo) in &topos {
        let m = metrics::metrics(topo);
        println!(
            "{:<12} {:>9} {:>10.3} {:>10} {:>7} {:>6}",
            name, m.diameter, m.avg_distance, m.bisection_width, m.max_degree, m.edges
        );
    }

    // Routing demo: how a message travels 0 -> 11 in each network.
    println!("\nroute from processor 0 to processor 11:");
    for (name, topo) in &topos {
        let router = Router::for_topology(topo);
        let path: Vec<String> = std::iter::once(0u32)
            .chain(router.path(NodeId(0), NodeId(11)).iter().map(|n| n.0))
            .map(|n| n.to_string())
            .collect();
        println!("  {:<12} {} ({} hops)", name, path.join(" -> "), path.len() - 1);
        assert_eq!(
            router.hops(NodeId(0), NodeId(11)) as u32,
            distance(topo, NodeId(0), NodeId(11)),
            "routing must be minimal"
        );
    }

    // The scheduling consequence: one matmul batch, pure time-sharing, per
    // topology. Low-degree/long-diameter networks hurt most (§5.2).
    println!("\ntime-sharing mean response on one 16-node partition, by topology:");
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &sizes, &cost);
    for kind in [
        TopologyKind::Linear,
        TopologyKind::Ring,
        TopologyKind::Mesh { rows: 0, cols: 0 },
        TopologyKind::Hypercube { dim: 0 },
    ] {
        if PartitionPlan::equal(16, 16, kind).is_none() {
            println!("  {kind:<18} (not realizable on the real machine)");
            continue;
        }
        let r = run_experiment(
            &ExperimentConfig::paper(16, kind, PolicyKind::TimeSharing),
            &batch,
        )
        .expect("run completed");
        println!("  {:<18} {:>7.3} s", format!("{kind}"), r.mean_response);
    }
}
