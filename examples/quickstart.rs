//! Quickstart: build a small batch, run it under both scheduling policies on
//! a simulated Transputer machine, and compare mean response times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parsched::prelude::*;

fn main() {
    // A batch of eight fork-join jobs with exponential service demands
    // (deterministic given the seed).
    let cost = CostModel::default();
    let params = SyntheticParams {
        width: 8,
        ..SyntheticParams::default()
    };
    let mut rng = DetRng::new(7).substream("quickstart");
    let batch = synthetic_batch(8, &params, &cost, &mut rng);

    println!("batch of {} jobs:", batch.len());
    for job in &batch {
        println!(
            "  {:<6} demand {:>10}  {} processes, {} KB resident",
            job.name,
            format!("{}", job.total_compute()),
            job.width(),
            job.total_mem() / 1024,
        );
    }

    // Two eight-processor partitions wired as rings.
    for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
        let config = ExperimentConfig::paper(8, TopologyKind::Ring, policy);
        let result = run_experiment(&config, &batch).expect("simulation completed");
        let stats = &result.primary.stats;
        println!(
            "\n{:<7} on {}: mean response {:.3} s (makespan {}, cpu {:.0}%, \
             {} messages, {} engine events)",
            policy.label(),
            config.label(),
            result.mean_response,
            result.primary.makespan,
            stats.mean_cpu_utilization * 100.0,
            stats.messages_sent,
            result.primary.events,
        );
    }
}
