//! The paper's matrix-multiplication experiment (Figures 3 and 4) at full
//! detail: for each partition configuration, print the static and
//! time-sharing mean response times *and* the system-level effects the paper
//! attributes the gap to (link utilization, memory pressure, preemptions).
//!
//! ```text
//! cargo run --release --example matmul_experiment [fixed|adaptive]
//! ```

use parsched::prelude::*;

fn main() {
    let arch = match std::env::args().nth(1).as_deref() {
        Some("fixed") => Arch::Fixed,
        Some("adaptive") | None => Arch::Adaptive,
        Some(other) => {
            eprintln!("unknown architecture '{other}', expected fixed|adaptive");
            std::process::exit(2);
        }
    };
    let sizes = BatchSizes::default();
    let cost = CostModel::default();

    println!(
        "matrix multiplication, {} software architecture \
         ({}x{} small / {}x{} large, 12+4 per batch)\n",
        arch.label(),
        sizes.mm_small,
        sizes.mm_small,
        sizes.mm_large,
        sizes.mm_large
    );
    println!(
        "{:<7} {:>9} {:>9} {:>7} | {:>8} {:>9} {:>10} {:>9}",
        "config", "static(s)", "ts(s)", "ts/st", "link-max", "mem-peak", "preempts", "blocks"
    );

    for (p, kind) in paper_configs(false) {
        let batch = paper_batch(App::MatMul, arch, p, &sizes, &cost);
        let st = run_experiment(
            &ExperimentConfig::paper(p, kind, PolicyKind::Static),
            &batch,
        )
        .expect("static run completed");
        let ts = run_experiment(
            &ExperimentConfig::paper(p, kind, PolicyKind::TimeSharing),
            &batch,
        )
        .expect("time-sharing run completed");
        let s = &ts.primary.stats;
        println!(
            "{:<7} {:>9.3} {:>9.3} {:>7.2} | {:>8.2} {:>8}K {:>10} {:>9}",
            st.label,
            st.mean_response,
            ts.mean_response,
            ts.mean_response / st.mean_response,
            s.max_link_utilization,
            s.peak_mem_used / 1024,
            s.preemptions,
            s.send_blocks,
        );
    }

    println!(
        "\nThe right-hand columns describe the time-sharing run: as partitions\n\
         grow (left to right in the paper's figures), multiprogramming piles\n\
         more traffic and buffer demand onto the same nodes — the memory\n\
         contention and message congestion the paper blames for time-sharing's\n\
         losses."
    );
}
