//! The service-demand variance crossover (§5.2, refs [2, 3] of the paper):
//! the paper's two-size batches have too little variance for time-sharing
//! to shine, but as the coefficient of variation grows, round-robin's
//! insurance against long jobs overtakes FCFS space-sharing.
//!
//! ```text
//! cargo run --release --example variance_crossover [seed]
//! ```

use parsched::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cost = CostModel::default();
    let root = DetRng::new(seed);

    println!(
        "synthetic 4-wide fork-join batches on one 16-node mesh partition \
         (seed {seed}):\n"
    );
    println!(
        "{:>5} {:>11} {:>9} {:>8}  verdict",
        "cv", "static(s)", "ts(s)", "ts/st"
    );
    for (i, cv) in [0.0, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0].into_iter().enumerate() {
        let params = SyntheticParams {
            cv,
            width: 4,
            msg_bytes: 1024,
            ..SyntheticParams::default()
        };
        let mut stream = root.substream_idx("crossover", i as u64);
        let batch = synthetic_batch(16, &params, &cost, &mut stream);
        let kind = TopologyKind::Mesh { rows: 0, cols: 0 };
        let st = run_experiment(
            &ExperimentConfig::paper(16, kind, PolicyKind::Static),
            &batch,
        )
        .expect("static run");
        let ts = run_experiment(
            &ExperimentConfig::paper(16, kind, PolicyKind::TimeSharing),
            &batch,
        )
        .expect("ts run");
        let ratio = ts.mean_response / st.mean_response;
        println!(
            "{:>5} {:>11.3} {:>9.3} {:>8.3}  {}",
            cv,
            st.mean_response,
            ts.mean_response,
            ratio,
            if ratio < 0.97 {
                "time-sharing wins"
            } else if ratio > 1.03 {
                "static wins"
            } else {
                "tie"
            }
        );
    }

    println!(
        "\nLow variance favours run-to-completion (round-robin merely delays\n\
         everyone); high variance favours time-sharing (short jobs no longer\n\
         wait behind long ones). The paper's 12-small/4-large batches sit on\n\
         the static side of the crossover, which is §5.2's point."
    );
}
